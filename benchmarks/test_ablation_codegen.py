"""Ablation: which code-generator features the worst-case SER depends on.

DESIGN.md calls out the key design choices of the code generator framework:
the blocking (self-dependent) L2-miss load, the ACE loads/stores that cover
every word of the previous cache line, the instructions dependent on the
miss, and the all-ACE requirement.  This benchmark removes each feature from
the paper's reference knob setting and measures the SER lost, reproducing the
reasoning of Sections III and IV.
"""

from __future__ import annotations

import pytest

from repro.avf.analysis import StructureGroup
from repro.stressmark.fitness import FitnessFunction
from repro.stressmark.generator import StressmarkGenerator, reference_knobs
from repro.uarch.config import baseline_config

from _bench_utils import print_series


@pytest.fixture(scope="module")
def evaluator():
    return StressmarkGenerator(config=baseline_config(), max_instructions=5_000)


def _evaluate(evaluator, knobs):
    _, report, _ = evaluator.evaluate(knobs)
    return report


def test_ablation_codegen_features(benchmark, evaluator):
    reference = reference_knobs(baseline_config())

    def run_all():
        return {
            "reference (Figure 5a)": _evaluate(evaluator, reference),
            "no blocking L2 miss (L2-hit loop)": _evaluate(
                evaluator, reference.derive(use_l2_miss=False)
            ),
            "no loads/stores": _evaluate(
                evaluator, reference.derive(num_loads=0, num_stores=0)
            ),
            "no miss-dependent instructions": _evaluate(
                evaluator, reference.derive(num_dependent_on_miss=0)
            ),
            "short loop (half the ROB)": _evaluate(
                evaluator, reference.derive(loop_size=40)
            ),
        }

    reports = benchmark.pedantic(run_all, iterations=1, rounds=1)

    print_series(
        "Ablation: SER (units/bit) after removing one code-generator feature",
        [
            {
                "variant": name,
                "qs": report.ser(StructureGroup.QS),
                "core": report.core_ser,
                "dl1_dtlb": report.ser(StructureGroup.DL1_DTLB),
                "l2": report.ser(StructureGroup.L2),
                "ipc": report.ipc,
            }
            for name, report in reports.items()
        ],
    )

    reference_report = reports["reference (Figure 5a)"]
    # Removing the blocking miss collapses queue occupancy (Section IV-A.1).
    assert reports["no blocking L2 miss (L2-hit loop)"].ser(StructureGroup.QS) < \
        reference_report.ser(StructureGroup.QS)
    # Removing loads/stores empties the LQ/SQ, the largest core contributors.
    assert reports["no loads/stores"].ser(StructureGroup.QS) < reference_report.ser(StructureGroup.QS)
    # A loop much smaller than the ROB serialises extra L2 misses per window:
    # throughput (and with it the rate at which cache lines are made ACE)
    # collapses without a commensurate cache-SER gain (Section IV-B's argument
    # for sizing the loop to the ROB).
    short = reports["short loop (half the ROB)"]
    assert short.ipc < reference_report.ipc
    assert short.ser(StructureGroup.DL1_DTLB) <= reference_report.ser(StructureGroup.DL1_DTLB) + 1e-6


def test_ablation_fitness_formulations(benchmark, evaluator):
    """Compare the documented fitness formulations on the reference candidate."""
    reference = reference_knobs(baseline_config())
    result = evaluator.simulate(reference, max_instructions=5_000)

    def score_all():
        return {
            "balanced (default)": FitnessFunction.balanced()(result),
            "overall SER": FitnessFunction.overall()(result),
            "core only": FitnessFunction.core_only()(result),
        }

    scores = benchmark.pedantic(score_all, iterations=1, rounds=1)
    print_series("Ablation: fitness formulations on the reference stressmark",
                 [{"fitness": name, "score": value} for name, value in scores.items()])

    assert scores["core only"] < scores["balanced (default)"]
    assert all(value > 0.0 for value in scores.values())
