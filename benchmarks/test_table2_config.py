"""Table II: alternate Configuration A (reproduction sanity benchmark)."""

from __future__ import annotations

from repro.experiments.tables import table2

from _bench_utils import print_series


def test_table2_configuration_a(benchmark):
    """Regenerate Table II and benchmark the configuration construction."""
    table = benchmark(table2)
    print_series("Table II: Configuration A", [{"parameter": k, "value": v} for k, v in table.items()])
    assert table["ROB"].startswith("96 entries")
    assert "2MB" in table["L2 cache"]
