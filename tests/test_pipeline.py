"""Behavioural tests for the out-of-order core timing and ACE model."""

from __future__ import annotations

import pytest

from repro.isa import (
    BranchBehavior,
    FixedPattern,
    OperandWidth,
    PointerChasePattern,
    Program,
    StridedPattern,
    WarmupRegion,
    make_alu,
    make_branch,
    make_load,
    make_mul,
    make_nop,
    make_store,
)
from repro.uarch.pipeline import OutOfOrderCore
from repro.uarch.structures import StructureName


def run(config, body, iterations=10**9, max_instructions=2000, seed=1, **program_kwargs):
    program = Program(name="test", body=body, iterations=iterations, **program_kwargs)
    core = OutOfOrderCore(config, seed=seed)
    return core.run(program, max_instructions=max_instructions)


class TestThroughput:
    def test_independent_alus_reach_high_ipc(self, small_config):
        body = [make_alu(3 + (i % 8), [2]) for i in range(8)]
        result = run(small_config, body)
        assert result.stats.ipc > 2.0

    def test_dependent_alu_chain_is_serialised(self, small_config):
        # Every instruction depends on the previous one: IPC ~ 1.
        body = [make_alu(3, [3]) for _ in range(8)]
        result = run(small_config, body)
        assert 0.7 < result.stats.ipc <= 1.1

    def test_dependent_multiply_chain_pays_latency(self, small_config):
        body = [make_mul(3, [3]) for _ in range(8)]
        result = run(small_config, body)
        assert result.stats.ipc < 0.25  # ~1/7 with some overlap at the seams

    def test_memory_issue_width_limits_loads(self, small_config):
        pattern = FixedPattern(address=0)
        body = [make_load(3 + (i % 8), pattern, srcs=[2]) for i in range(8)]
        result = run(small_config, body)
        assert result.stats.ipc <= small_config.memory_issue_width + 0.1

    def test_commit_width_bounds_ipc(self, small_config):
        body = [make_alu(3 + (i % 16), [2]) for i in range(16)]
        result = run(small_config, body)
        assert result.stats.ipc <= small_config.commit_width

    def test_max_instructions_respected(self, small_config):
        body = [make_alu(3, [2])]
        result = run(small_config, body, max_instructions=500)
        assert result.stats.committed_instructions == 500


class TestMemoryBehaviour:
    def test_l2_misses_reduce_ipc(self, small_config):
        region = 4 * small_config.l2.size_bytes
        missing = [make_load(1, PointerChasePattern(base=0, stride=64, region=region), srcs=[1])]
        hitting = [make_load(1, FixedPattern(address=0), srcs=[1])]
        miss_result = run(small_config, missing, max_instructions=300)
        hit_result = run(small_config, hitting, max_instructions=300)
        assert miss_result.stats.ipc < hit_result.stats.ipc / 5
        assert miss_result.stats.l2_misses > 0

    def test_blocking_miss_fills_rob(self, small_config):
        """In the shadow of a blocking L2 miss the ROB fills (Section IV-A.1)."""
        region = 4 * small_config.l2.size_bytes
        chase = make_load(1, PointerChasePattern(base=0, stride=64, region=region), srcs=[1])
        fillers = [make_alu(3 + (i % 8), [2]) for i in range(20)]
        with_miss = run(small_config, [chase] + fillers, max_instructions=1000)
        without_miss = run(small_config, fillers, max_instructions=1000)
        assert with_miss.occupancy(StructureName.ROB) > 2 * without_miss.occupancy(StructureName.ROB)

    def test_store_makes_dcache_ace(self, small_config):
        body = [make_store(StridedPattern(base=0, stride=8, region=1024), srcs=[2])]
        result = run(small_config, body, max_instructions=500)
        assert result.avf(StructureName.DL1) > 0.0

    def test_functional_setup_warms_caches(self, small_config):
        region = small_config.dl1.size_bytes
        body = [make_load(3, StridedPattern(base=0, stride=64, region=region), srcs=[2])]
        warm = Program(
            name="warm", body=body, iterations=10**9,
            warmup_regions=[WarmupRegion(base=0, size_bytes=region, dirty=False, ace=True)],
        )
        cold = Program(name="cold", body=body, iterations=10**9)
        core = OutOfOrderCore(small_config, seed=1)
        warm_result = core.run(warm, max_instructions=50)
        cold_result = core.run(cold, max_instructions=50)
        assert warm_result.stats.dl1_miss_rate < cold_result.stats.dl1_miss_rate

    def test_dtlb_misses_counted(self, small_config):
        region = 8 * small_config.dtlb.reach_bytes
        body = [make_load(3, StridedPattern(base=0, stride=small_config.dtlb.page_bytes, region=region), srcs=[2])]
        result = run(small_config, body, max_instructions=400)
        assert result.stats.dtlb_miss_rate > 0.5


class TestBranchHandling:
    def test_loop_branch_rarely_mispredicts(self, small_config):
        body = [make_alu(3, [2]), make_branch(srcs=[2])]
        result = run(
            small_config, body,
            branch_behaviors={1: BranchBehavior.LOOP_CLOSING},
            max_instructions=2000,
        )
        assert result.stats.branch_misprediction_rate < 0.05

    def test_random_branches_mispredict(self, small_config):
        body = [make_alu(3, [2]), make_branch(srcs=[2], taken_probability=0.5)]
        result = run(small_config, body, max_instructions=2000)
        assert result.stats.branch_misprediction_rate > 0.2

    def test_mispredictions_reduce_occupancy(self, small_config):
        fillers = [make_alu(3 + (i % 8), [3 + ((i + 1) % 8)]) for i in range(10)]
        predictable = fillers + [make_branch(srcs=[2], taken_probability=1.0)]
        random_branch = fillers + [make_branch(srcs=[2], taken_probability=0.5)]
        good = run(small_config, predictable, max_instructions=1500)
        bad = run(small_config, random_branch, max_instructions=1500)
        assert bad.occupancy(StructureName.ROB) < good.occupancy(StructureName.ROB)
        assert bad.stats.ipc < good.stats.ipc

    def test_frontend_miss_rate_slows_fetch(self, small_config):
        body = [make_alu(3 + (i % 8), [2]) for i in range(8)]
        fast = Program(name="fast", body=body, iterations=10**9)
        slow = Program(
            name="slow", body=body, iterations=10**9,
            metadata={"frontend_miss_rate": 0.3, "frontend_miss_penalty": 12},
        )
        core = OutOfOrderCore(small_config, seed=1)
        fast_result = core.run(fast, max_instructions=1000)
        slow_result = core.run(slow, max_instructions=1000)
        assert slow_result.stats.ipc < fast_result.stats.ipc


class TestAceAccounting:
    def test_unace_instructions_have_zero_avf_but_occupy(self, small_config):
        body = [make_alu(3, [2], ace=False) for _ in range(6)]
        result = run(small_config, body, max_instructions=600)
        assert result.avf(StructureName.ROB) == 0.0
        assert result.occupancy(StructureName.ROB) > 0.0

    def test_nops_do_not_enter_issue_queue(self, small_config):
        body = [make_nop() for _ in range(6)]
        result = run(small_config, body, max_instructions=600)
        assert result.occupancy(StructureName.IQ) == 0.0
        assert result.occupancy(StructureName.ROB) > 0.0

    def test_narrow_stores_halve_sq_data_ace(self, small_config):
        pattern = StridedPattern(base=0, stride=8, region=1024)
        wide = [make_store(pattern, srcs=[2], width=OperandWidth.WORD64)]
        narrow = [make_store(pattern, srcs=[2], width=OperandWidth.WORD32)]
        wide_result = run(small_config, wide, max_instructions=400)
        narrow_result = run(small_config, narrow, max_instructions=400)
        ratio = narrow_result.avf(StructureName.SQ_DATA) / wide_result.avf(StructureName.SQ_DATA)
        assert ratio == pytest.approx(0.5, abs=0.1)

    def test_lq_data_ace_no_greater_than_tag(self, small_config):
        region = 4 * small_config.l2.size_bytes
        body = [make_load(1, PointerChasePattern(base=0, stride=64, region=region), srcs=[1])]
        result = run(small_config, body, max_instructions=300)
        # Data arrives only when the miss returns; the tag is ACE from issue.
        assert result.avf(StructureName.LQ_DATA) <= result.avf(StructureName.LQ_TAG) + 1e-9

    def test_live_in_registers_contribute_rf_ace(self, small_config):
        # Reading architected registers that are never rewritten keeps their
        # live-in values ACE for the whole run.
        body = [make_alu(3, [20 + i]) for i in range(4)]
        result = run(small_config, body, max_instructions=800)
        assert result.avf(StructureName.RF) > 0.05

    def test_functional_units_ace_only_for_ace_ops(self, small_config):
        ace_body = [make_alu(3 + (i % 4), [2]) for i in range(8)]
        unace_body = [make_alu(3 + (i % 4), [2], ace=False) for i in range(8)]
        ace_result = run(small_config, ace_body, max_instructions=800)
        unace_result = run(small_config, unace_body, max_instructions=800)
        assert ace_result.avf(StructureName.FU) > 0.0
        assert unace_result.avf(StructureName.FU) == 0.0

    def test_avf_and_occupancy_bounded(self, small_config, stressmark_like_program):
        core = OutOfOrderCore(small_config, seed=1)
        result = core.run(stressmark_like_program, max_instructions=1500)
        for structure in result.accumulators:
            assert 0.0 <= result.avf(structure) <= 1.0
            assert 0.0 <= result.occupancy(structure) <= 1.0

    def test_avf_by_structure_covers_all(self, small_config, stressmark_like_program):
        from repro.vuln import enabled_structures

        core = OutOfOrderCore(small_config, seed=1)
        result = core.run(stressmark_like_program, max_instructions=800)
        expected = {descriptor.structure for descriptor in enabled_structures(small_config)}
        assert set(result.avf_by_structure()) == expected
        # The stock structure set of the paper is always present.
        for name in ("iq", "rob", "rf", "fu", "dl1", "l2", "dtlb"):
            assert StructureName(name) in expected


class TestStressmarkShapedBehaviour:
    def test_stressmark_like_program_stresses_structures(self, small_config, stressmark_like_program):
        core = OutOfOrderCore(small_config, seed=1)
        result = core.run(stressmark_like_program, max_instructions=3000)
        assert result.avf(StructureName.ROB) > 0.6
        assert result.avf(StructureName.LQ_TAG) > 0.5
        assert result.avf(StructureName.DL1) > 0.65
        assert result.avf(StructureName.DTLB) > 0.55
        assert result.avf(StructureName.L2) > 0.65

    def test_determinism(self, small_config, stressmark_like_program):
        core_a = OutOfOrderCore(small_config, seed=5)
        core_b = OutOfOrderCore(small_config, seed=5)
        result_a = core_a.run(stressmark_like_program, max_instructions=1200)
        result_b = core_b.run(stressmark_like_program, max_instructions=1200)
        assert result_a.stats.total_cycles == result_b.stats.total_cycles
        assert result_a.avf_by_structure() == result_b.avf_by_structure()

    def test_different_seeds_allowed(self, small_config, stressmark_like_program):
        result_a = OutOfOrderCore(small_config, seed=1).run(stressmark_like_program, max_instructions=800)
        result_b = OutOfOrderCore(small_config, seed=2).run(stressmark_like_program, max_instructions=800)
        # Deterministic per seed; seeds only matter for stochastic programs,
        # so results may or may not differ — both must stay within bounds.
        for result in (result_a, result_b):
            assert 0.0 < result.avf(StructureName.ROB) <= 1.0

    def test_invalid_budget_rejected(self, small_config, stressmark_like_program):
        with pytest.raises(ValueError):
            OutOfOrderCore(small_config).run(stressmark_like_program, max_instructions=0)
