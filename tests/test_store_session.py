"""Tests for Session/ExperimentContext store integration and sweep sharding."""

from __future__ import annotations

import json

import pytest

from repro.api import RunSpec, Session, SpecError
from repro.store import open_store

TINY_SIM = {"workload_instructions": 900}
TINY_GA = {
    "workload_instructions": 900,
    "stressmark_instructions": 1_200,
    "ga_population": 4,
    "ga_generations": 2,
}


def simulate_spec(name: str = "sim", **overrides) -> RunSpec:
    return RunSpec(kind="simulate", name=name, workloads=("crc32_proxy",),
                   scale_overrides={**TINY_SIM, **overrides})


def stressmark_spec(name: str = "sm") -> RunSpec:
    return RunSpec(kind="stressmark", name=name, scale_overrides=dict(TINY_GA))


def sweep_spec() -> RunSpec:
    return RunSpec(
        kind="sweep",
        name="sweep",
        base=simulate_spec("sim"),
        axes={"fault_rates": ("unit", "rhc", "edr")},
        runs=(stressmark_spec(),),
    )


class TestRunWithStore:
    def test_result_persisted_and_replayed(self, tmp_path):
        spec = simulate_spec()
        with Session(store=tmp_path / "store") as session:
            first = session.run(spec)
        with open_store(tmp_path / "store") as store:
            assert spec.digest in store
        with Session(store=tmp_path / "store") as session:
            replayed = session.run(spec)
        assert replayed.to_json() == first.to_json()

    def test_replay_never_simulates(self, tmp_path, monkeypatch):
        spec = simulate_spec()
        with Session(store=tmp_path / "store") as session:
            session.run(spec)

        def explode(*args, **kwargs):  # pragma: no cover - defensive
            raise AssertionError("a stored result must not be re-simulated")

        monkeypatch.setattr("repro.uarch.pipeline.OutOfOrderCore.run", explode)
        with Session(store=tmp_path / "store") as session:
            replayed = session.run(spec)
        assert replayed.rows[0]["program"] == "crc32_proxy"

    def test_stressmark_replay_skips_search(self, tmp_path, monkeypatch):
        spec = stressmark_spec()
        with Session(store=tmp_path / "store") as session:
            first = session.run(spec)
        monkeypatch.setattr(
            "repro.stressmark.generator.StressmarkGenerator.generate",
            lambda *a, **k: (_ for _ in ()).throw(AssertionError("searched again")),
        )
        with Session(store=tmp_path / "store") as session:
            replayed = session.run(spec)
        assert replayed.knobs == first.knobs
        assert replayed.ga == first.ga

    def test_rows_match_storeless_run(self, tmp_path):
        spec = sweep_spec()
        with Session(store=tmp_path / "store") as session:
            stored = session.run(spec)
        with Session() as session:
            fresh = session.run(spec)
        assert json.dumps(stored.rows) == json.dumps(fresh.rows)

    def test_interrupted_sweep_resumes_byte_identically(self, tmp_path):
        """Rows after run -> interrupt -> resume equal an uninterrupted run."""
        spec = sweep_spec()
        children = spec.expand()
        # "Interrupt" after the first two children: only they reach the store.
        with Session(store=tmp_path / "store") as session:
            for child in children[:2]:
                session.run(child)
        with Session(store=tmp_path / "store") as session:
            resumed = session.run(spec)
        with Session() as session:
            uninterrupted = session.run(spec)
        assert json.dumps(resumed.rows) == json.dumps(uninterrupted.rows)

    def test_pinned_scale_keys_never_alias(self, tmp_path):
        """The same spec under different pinned scales stores two results."""
        spec = simulate_spec()
        with Session(store=tmp_path / "store") as session:
            plain = session.run(spec)
        quick = Session(scale="quick", store=tmp_path / "store")
        try:
            pinned = quick.run(spec)
        finally:
            quick.close()
        # spec's own overrides (900 insns) vs pinned quick scale (4000 insns).
        assert plain.rows[0]["instructions"] != pinned.rows[0]["instructions"]
        with open_store(tmp_path / "store") as store:
            assert len(store) == 2

    def test_wrapped_context_session_accepts_store(self, tmp_path):
        from repro.experiments.runner import ExperimentContext, ExperimentScale

        context = ExperimentContext(ExperimentScale.quick())
        try:
            with Session(context=context, store=tmp_path / "store") as session:
                assert session.store is not None
        finally:
            context.close()


class TestContextArtifacts:
    def test_workload_simulations_replay_from_artifacts(self, tmp_path, monkeypatch):
        from repro.experiments.runner import ExperimentContext, ExperimentScale
        from repro.uarch.config import baseline_config
        from repro.workloads.suite import all_profiles

        profile = all_profiles()[0]
        scale = ExperimentScale.quick()
        with open_store(tmp_path / "store") as store:
            context = ExperimentContext(scale, store=store)
            report = context.run_workload(profile, baseline_config())
            context.close()

            monkeypatch.setattr(
                "repro.uarch.pipeline.OutOfOrderCore.run",
                lambda *a, **k: (_ for _ in ()).throw(AssertionError("re-simulated")),
            )
            fresh_context = ExperimentContext(scale, store=store)
            replayed = fresh_context.run_workload(profile, baseline_config())
            fresh_context.close()
        assert replayed.as_row() == report.as_row()

    def test_checkpoint_cleared_after_completed_search(self, tmp_path):
        with Session(store=tmp_path / "store") as session:
            session.run(stressmark_spec())
        checkpoints = list((tmp_path / "store" / "checkpoints").glob("*.ckpt"))
        assert checkpoints == []


class TestRunShard:
    def test_shards_partition_children_round_robin(self, tmp_path):
        spec = sweep_spec()
        with Session(store=tmp_path / "store") as session:
            one = session.run_shard(spec, 1, 2)
            two = session.run_shard(spec, 2, 2)
        children = spec.expand()
        assert len(one.children) + len(two.children) == len(children)
        assert one.provenance["shard"] == "1/2"
        assert one.provenance["total_runs"] == len(children)
        assert [c.spec.name for c in one.children] == [c.name for c in children[0::2]]
        assert [c.spec.name for c in two.children] == [c.name for c in children[1::2]]

    def test_merged_shards_complete_the_sweep(self, tmp_path):
        from repro.store import merge_stores

        spec = sweep_spec()
        with Session(store=tmp_path / "a") as session:
            session.run_shard(spec, 1, 2)
        with Session(store=tmp_path / "b") as session:
            session.run_shard(spec, 2, 2)
        merged, added = merge_stores(tmp_path / "merged", [tmp_path / "a", tmp_path / "b"])
        assert added == len(spec.expand())
        merged.close()

        with Session(store=tmp_path / "merged") as session:
            assembled = session.run(spec)
        with Session() as session:
            fresh = session.run(spec)
        assert json.dumps(assembled.rows) == json.dumps(fresh.rows)

    def test_shard_validation(self, tmp_path):
        with Session() as session:
            with pytest.raises(SpecError, match="only sweeps"):
                session.run_shard(simulate_spec(), 1, 2)
            with pytest.raises(SpecError, match="shard must satisfy"):
                session.run_shard(sweep_spec(), 0, 2)
            with pytest.raises(SpecError, match="shard must satisfy"):
                session.run_shard(sweep_spec(), 3, 2)

    def test_shard_not_stored_under_sweep_digest(self, tmp_path):
        spec = sweep_spec()
        with Session(store=tmp_path / "store") as session:
            session.run_shard(spec, 1, 2)
        with open_store(tmp_path / "store") as store:
            assert spec.digest not in store
