"""Unit tests for the experiment result dataclasses (no simulation needed)."""

from __future__ import annotations

import pytest

from repro.avf.analysis import StructureGroup
from repro.experiments.figures import Figure6Result, SerComparisonResult, SerComparisonRow
from repro.experiments.tables import Table3Row
from repro.uarch.structures import StructureName
from repro.workloads.profiles import WorkloadSuite


def row(name: str, qs: float, stressmark: bool = False) -> SerComparisonRow:
    return SerComparisonRow(
        program=name,
        is_stressmark=stressmark,
        ser={
            StructureGroup.QS: qs,
            StructureGroup.QS_RF: qs * 0.8,
            StructureGroup.DL1_DTLB: qs * 0.9,
            StructureGroup.L2: qs * 0.7,
        },
    )


class TestSerComparisonResult:
    def _result(self) -> SerComparisonResult:
        result = SerComparisonResult(figure="test", config_name="baseline", fault_rate_name="unit")
        result.rows = [row("stressmark", 0.8, stressmark=True), row("a", 0.4), row("b", 0.5)]
        return result

    def test_stressmark_row(self):
        assert self._result().stressmark_row().program == "stressmark"

    def test_best_workload_excludes_stressmark(self):
        assert self._result().best_workload(StructureGroup.QS).program == "b"

    def test_margin(self):
        assert self._result().stressmark_margin(StructureGroup.QS) == pytest.approx(0.8 / 0.5)

    def test_margin_with_zero_best_is_infinite(self):
        result = SerComparisonResult(figure="t", config_name="c", fault_rate_name="unit")
        result.rows = [row("stressmark", 0.8, stressmark=True), row("a", 0.0)]
        assert result.stressmark_margin(StructureGroup.QS) == float("inf")

    def test_missing_stressmark_raises(self):
        result = SerComparisonResult(figure="t", config_name="c", fault_rate_name="unit")
        result.rows = [row("a", 0.4)]
        with pytest.raises(ValueError):
            result.stressmark_row()

    def test_missing_workloads_raises(self):
        result = SerComparisonResult(figure="t", config_name="c", fault_rate_name="unit")
        result.rows = [row("stressmark", 0.8, stressmark=True)]
        with pytest.raises(ValueError):
            result.best_workload(StructureGroup.QS)

    def test_as_dict_rounding(self):
        serialised = row("x", 0.123456).as_dict()
        assert serialised["ser_qs"] == pytest.approx(0.1235)
        assert serialised["program"] == "x"


class TestFigure6Result:
    def _result(self) -> Figure6Result:
        result = Figure6Result(suite=WorkloadSuite.MIBENCH)
        result.rows = {
            "stressmark": {StructureName.ROB: 0.9, StructureName.FU: 0.1},
            "a": {StructureName.ROB: 0.5, StructureName.FU: 0.6},
        }
        return result

    def test_avf_lookup(self):
        assert self._result().avf("a", StructureName.ROB) == 0.5

    def test_stressmark_exceeds(self):
        result = self._result()
        assert result.stressmark_exceeds(StructureName.ROB)
        assert not result.stressmark_exceeds(StructureName.FU)


class TestTable3Row:
    def _row(self) -> Table3Row:
        return Table3Row(
            configuration="baseline",
            stressmark_ser=0.63,
            best_program_name="447.dealII_proxy",
            best_program_ser=0.46,
            sum_of_highest_per_structure_ser=0.58,
            raw_circuit_ser=1.0,
        )

    def test_margin_over_best_program(self):
        assert self._row().stressmark_margin_over_best_program() == pytest.approx(0.63 / 0.46)

    def test_sum_of_highest_error_matches_paper_definition(self):
        # Paper: the estimate errs by 8% for the baseline configuration.
        assert self._row().sum_of_highest_error() == pytest.approx(abs(0.58 - 0.63) / 0.63)

    def test_zero_best_program(self):
        zero = Table3Row("c", 0.5, "x", 0.0, 0.4, 1.0)
        assert zero.stressmark_margin_over_best_program() == float("inf")

    def test_zero_stressmark(self):
        zero = Table3Row("c", 0.0, "x", 0.0, 0.4, 1.0)
        assert zero.sum_of_highest_error() == 0.0
