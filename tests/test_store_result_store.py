"""Tests for the persistent result store (JSONL and sqlite backends)."""

from __future__ import annotations

import json

import pytest

from repro.api.spec import RunResult, RunSpec
from repro.store import (
    SCHEMA_VERSION,
    ResultStore,
    StoreError,
    atomic_write_text,
    merge_stores,
    open_store,
)
from repro.store.result_store import JSONL_FILE, META_FILE


def make_result(name: str = "r", seconds: float = 1.0) -> RunResult:
    spec = RunSpec(kind="simulate", name=name, workloads=("crc32_proxy",))
    return RunResult(
        spec=spec,
        rows=[{"program": "crc32_proxy", "ser_qs": 0.5}],
        timing={"seconds": seconds},
        provenance={"spec_digest": spec.digest},
    )


class TestAtomicWrite:
    def test_writes_and_replaces(self, tmp_path):
        path = tmp_path / "meta.json"
        atomic_write_text(path, "one")
        atomic_write_text(path, "two")
        assert path.read_text() == "two"
        assert not path.with_name(path.name + ".tmp").exists()


@pytest.mark.parametrize("backend", ["jsonl", "sqlite"])
class TestBackends:
    def test_put_get_round_trip(self, tmp_path, backend):
        with ResultStore(tmp_path / "store", backend=backend) as store:
            result = make_result()
            digest = store.put(result)
            assert digest == result.spec_digest
            assert digest in store
            assert len(store) == 1
            fetched = store.get(digest)
            assert fetched is not None
            assert fetched.rows == result.rows
            assert fetched.spec.name == "r"

    def test_persists_across_reopen(self, tmp_path, backend):
        root = tmp_path / "store"
        with ResultStore(root, backend=backend) as store:
            digest = store.put(make_result())
        with open_store(root) as reopened:
            assert reopened.backend_name == backend
            assert reopened.get(digest).rows == make_result().rows

    def test_missing_digest_is_none(self, tmp_path, backend):
        with ResultStore(tmp_path / "store", backend=backend) as store:
            assert store.get("0" * 64) is None
            assert "0" * 64 not in store

    def test_reput_same_result_is_noop(self, tmp_path, backend):
        with ResultStore(tmp_path / "store", backend=backend) as store:
            store.put(make_result(seconds=1.0))
            # Identical modulo timing: first write wins, no conflict.
            store.put(make_result(seconds=9.0))
            assert len(store) == 1
            assert store.get(make_result().spec_digest).timing == {"seconds": 1.0}

    def test_conflicting_result_raises(self, tmp_path, backend):
        with ResultStore(tmp_path / "store", backend=backend) as store:
            store.put(make_result())
            different = make_result()
            different.rows = [{"program": "crc32_proxy", "ser_qs": 0.9}]
            with pytest.raises(StoreError, match="different result"):
                store.put(different)

    def test_digests_sorted(self, tmp_path, backend):
        with ResultStore(tmp_path / "store", backend=backend) as store:
            for name in ("a", "b", "c"):
                store.put(make_result(name))
            assert store.digests() == sorted(store.digests())
            assert len(store) == 3


class TestBackendSelection:
    def test_default_is_jsonl(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        assert store.backend_name == "jsonl"
        store.close()

    def test_meta_records_backend(self, tmp_path):
        ResultStore(tmp_path / "store", backend="sqlite").close()
        meta = json.loads((tmp_path / "store" / META_FILE).read_text())
        assert meta == {"schema_version": SCHEMA_VERSION, "backend": "sqlite"}

    def test_reopen_with_conflicting_backend_raises(self, tmp_path):
        ResultStore(tmp_path / "store", backend="sqlite").close()
        with pytest.raises(StoreError, match="created with the 'sqlite' backend"):
            ResultStore(tmp_path / "store", backend="jsonl")

    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(StoreError, match="unknown store backend"):
            ResultStore(tmp_path / "store", backend="csv")

    def test_store_path_must_be_directory(self, tmp_path):
        file_path = tmp_path / "not_a_dir"
        file_path.write_text("x")
        with pytest.raises(StoreError, match="not a directory"):
            ResultStore(file_path)

    def test_unknown_schema_rejected(self, tmp_path):
        root = tmp_path / "store"
        ResultStore(root).close()
        atomic_write_text(root / META_FILE, json.dumps({"schema_version": 99, "backend": "jsonl"}))
        with pytest.raises(StoreError, match="schema 99"):
            ResultStore(root)


class TestJsonlRobustness:
    def test_truncated_final_line_tolerated(self, tmp_path):
        root = tmp_path / "store"
        with ResultStore(root) as store:
            digest = store.put(make_result())
        jsonl = root / JSONL_FILE
        jsonl.write_text(jsonl.read_text() + '{"schema_version": 1, "digest": "abc", "resu')
        with open_store(root) as reopened:
            # The intact record survives; the torn append is dropped.
            assert reopened.digests() == [digest]

    def test_append_after_torn_tail_drops_fragment(self, tmp_path):
        """A crash-torn final line must not corrupt the next append."""
        root = tmp_path / "store"
        with ResultStore(root) as store:
            first = store.put(make_result("a"))
        jsonl = root / JSONL_FILE
        jsonl.write_text(jsonl.read_text() + '{"schema_version": 1, "digest": "torn')
        with open_store(root) as reopened:
            second = reopened.put(make_result("b"))
        with open_store(root) as final:
            # Both intact records survive; the torn fragment is gone.
            assert sorted(final.digests()) == sorted([first, second])

    def test_append_to_file_with_no_newline_at_all(self, tmp_path):
        root = tmp_path / "store"
        ResultStore(root).close()
        (root / JSONL_FILE).write_text('{"torn')
        with open_store(root) as store:
            digest = store.put(make_result())
        with open_store(root) as reopened:
            assert reopened.digests() == [digest]

    def test_corrupt_middle_line_raises(self, tmp_path):
        root = tmp_path / "store"
        with ResultStore(root) as store:
            store.put(make_result("a"))
        jsonl = root / JSONL_FILE
        jsonl.write_text("garbage\n" + jsonl.read_text())
        with pytest.raises(StoreError, match="corrupt record"):
            open_store(root)

    def test_record_schema_guard(self, tmp_path):
        root = tmp_path / "store"
        with ResultStore(root) as store:
            store.put(make_result())
        jsonl = root / JSONL_FILE
        record = json.loads(jsonl.read_text())
        record["schema_version"] = 42
        jsonl.write_text(json.dumps(record) + "\n")
        with pytest.raises(StoreError, match="unsupported store schema"):
            open_store(root)


class TestMerge:
    def test_merge_joins_disjoint_stores(self, tmp_path):
        with ResultStore(tmp_path / "a") as a:
            a.put(make_result("left"))
        with ResultStore(tmp_path / "b") as b:
            b.put(make_result("right"))
        merged, added = merge_stores(tmp_path / "dest", [tmp_path / "a", tmp_path / "b"])
        assert added == 2
        assert len(merged) == 2
        merged.close()

    def test_merge_skips_agreeing_duplicates(self, tmp_path):
        for name in ("a", "b"):
            with ResultStore(tmp_path / name) as store:
                store.put(make_result("shared", seconds=float(len(name))))
        merged, added = merge_stores(tmp_path / "dest", [tmp_path / "a", tmp_path / "b"])
        assert added == 1
        merged.close()

    def test_merge_conflict_raises(self, tmp_path):
        with ResultStore(tmp_path / "a") as a:
            a.put(make_result("shared"))
        with ResultStore(tmp_path / "b") as b:
            conflicting = make_result("shared")
            conflicting.rows = [{"program": "crc32_proxy", "ser_qs": 0.123}]
            b.put(conflicting)
        with pytest.raises(StoreError, match="merge conflict"):
            merge_stores(tmp_path / "dest", [tmp_path / "a", tmp_path / "b"])

    def test_merge_rejects_missing_source(self, tmp_path):
        """A typo'd source path must error, not merge as a fresh empty store."""
        with ResultStore(tmp_path / "a") as a:
            a.put(make_result())
        with pytest.raises(StoreError, match="not a result store"):
            merge_stores(tmp_path / "dest", [tmp_path / "a", tmp_path / "typo"])
        assert not (tmp_path / "typo").exists()

    def test_merge_into_cross_backend_destination(self, tmp_path):
        with ResultStore(tmp_path / "src", backend="jsonl") as src:
            src.put(make_result())
        merged, added = merge_stores(tmp_path / "dest", [tmp_path / "src"], backend="sqlite")
        assert added == 1
        assert merged.backend_name == "sqlite"
        merged.close()
