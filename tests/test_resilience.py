"""Tests for the fault-tolerant evaluation fabric.

Covers the resilient worker pool (retry / respawn / deadline / quarantine /
degradation), the chaos-injection harness, salvageable stores with
``fsck``, KeyboardInterrupt checkpointing, and the RunSpec/Session retry
knobs.  Every fault path must leave results bit-identical to a clean serial
run — the assertions here compare against :class:`SerialBackend` output.
"""

from __future__ import annotations

import functools
import json
import os
import sqlite3
import time
import warnings
from pathlib import Path

import pytest

from repro.api.spec import RunSpec, SpecError
from repro.ga.engine import GAParameters, GeneticAlgorithm
from repro.ga.genes import FloatGene, GeneSpace, IntGene
from repro.parallel.backends import SerialBackend
from repro.parallel.resilience import (
    FailurePolicy,
    FailureStats,
    Quarantined,
    ResilientPoolBackend,
    RetryPolicy,
    TaskFailedError,
)
from repro.store.result_store import JSONL_FILE, META_FILE, SCHEMA_VERSION, ResultStore, StoreError
from repro.store.fsck import fsck_store
from repro.store.sqlite_util import retry_locked
from repro.testing.chaos import (
    CHAOS_ENV_VAR,
    ChaosClause,
    ChaosError,
    chaos_hook,
    chaos_mangle,
    parse_chaos_spec,
)

# Pid of the pytest process; forked workers inherit this module constant
# while reporting a different os.getpid(), letting tasks fail only in
# children (so degraded in-process execution never kills the test runner).
_TEST_ROOT_PID = os.getpid()


def _square(value: int) -> int:
    return value * value


def _flaky(value: int, fail_dir: str, mode: str, failures: int) -> int:
    """Fail the first ``failures`` attempts for each item, then succeed.

    Attempts are counted through per-item marker files in ``fail_dir`` so the
    count survives worker crashes and respawns.  The marker is written
    *before* failing, so hung/killed attempts are still charged.
    """
    marker = Path(fail_dir) / f"{value}.attempts"
    attempts = int(marker.read_text()) if marker.exists() else 0
    if attempts < failures:
        marker.write_text(str(attempts + 1))
        if mode == "raise":
            raise RuntimeError(f"flaky failure #{attempts + 1} for item {value}")
        if mode == "exit":
            os._exit(77)
        if mode == "hang":
            time.sleep(60.0)
    return value * value


def _fail_item(value: int, poison: int) -> int:
    """Fail every attempt for one poisoned item, succeed for the rest."""
    if value == poison:
        raise ValueError(f"item {value} is poisoned")
    return value * value


def _exit_in_child(value: int) -> int:
    """Kill the process on every attempt — but only in a worker."""
    if os.getpid() != _TEST_ROOT_PID:
        os._exit(77)
    return value * value


SPACE = GeneSpace([IntGene("a", 0, 50), IntGene("b", 0, 50), FloatGene("c", 0.0, 1.0)])


def sphere_fitness(individual) -> float:
    genome = individual.genome
    individual.payload["echo"] = genome["a"]
    return float(genome["a"]) + float(genome["b"]) + 50.0 * float(genome["c"])


def _failing_fitness(individual) -> float:
    raise RuntimeError("evaluator always fails")


def _interrupting_sphere(individual, counter_dir: str, trigger: int) -> float:
    """Behaves exactly like :func:`sphere_fitness` until call ``trigger``."""
    counter = Path(counter_dir) / "calls"
    calls = int(counter.read_text()) if counter.exists() else 0
    calls += 1
    counter.write_text(str(calls))
    if calls == trigger:
        raise KeyboardInterrupt
    return sphere_fitness(individual)


def _fast_policy(**overrides) -> FailurePolicy:
    retry = RetryPolicy(max_attempts=3, base_delay=0.001)
    fields = {"retry": retry}
    fields.update(overrides)
    return FailurePolicy(**fields)


# --------------------------------------------------------------- policies


class TestRetryPolicy:
    def test_defaults(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 3
        assert policy.timeout is None

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(timeout=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=1.0, max_delay=0.5)

    def test_backoff_is_capped_exponential(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=0.5)
        assert policy.delay_for(1) == pytest.approx(0.1)
        assert policy.delay_for(2) == pytest.approx(0.2)
        assert policy.delay_for(3) == pytest.approx(0.4)
        assert policy.delay_for(4) == pytest.approx(0.5)  # capped
        assert policy.delay_for(10) == pytest.approx(0.5)

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRY_MAX_ATTEMPTS", "7")
        monkeypatch.setenv("REPRO_RETRY_BASE_DELAY", "0.25")
        monkeypatch.setenv("REPRO_RETRY_TIMEOUT", "12.5")
        policy = RetryPolicy.from_env()
        assert policy.max_attempts == 7
        assert policy.base_delay == pytest.approx(0.25)
        assert policy.timeout == pytest.approx(12.5)

    def test_from_env_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRY_MAX_ATTEMPTS", "several")
        with pytest.raises(ValueError):
            RetryPolicy.from_env()

    def test_derive_overrides(self):
        derived = RetryPolicy().derive(max_attempts=5, timeout=3.0)
        assert derived.max_attempts == 5
        assert derived.timeout == pytest.approx(3.0)
        assert derived.base_delay == RetryPolicy().base_delay


class TestFailurePolicy:
    def test_from_env_picks_up_retry(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRY_MAX_ATTEMPTS", "4")
        assert FailurePolicy.from_env().retry.max_attempts == 4

    def test_hashable_for_backend_sharing(self):
        a = FailurePolicy(retry=RetryPolicy(max_attempts=2))
        b = FailurePolicy(retry=RetryPolicy(max_attempts=2))
        assert {a: "shared"}[b] == "shared"

    def test_validation(self):
        with pytest.raises(ValueError):
            FailurePolicy(max_pool_failures=0)


# ----------------------------------------------------------- chaos harness


class TestChaosHarness:
    def test_parse_spec(self):
        clauses = parse_chaos_spec("worker:exit:0.5:2, result-store:truncate")
        assert clauses == (
            ChaosClause(site="worker", kind="exit", probability=0.5, limit=2),
            ChaosClause(site="result-store", kind="truncate"),
        )

    def test_parse_rejects_malformed(self):
        for spec in ("worker", "worker:implode", "worker:exit:2.0", "worker:exit:0.5:-1", "a:b:c:d:e"):
            with pytest.raises(ValueError):
                parse_chaos_spec(spec)

    def test_hooks_are_noops_when_unset(self, monkeypatch):
        monkeypatch.delenv(CHAOS_ENV_VAR, raising=False)
        chaos_hook("worker")
        assert chaos_mangle("result-store", b"payload") == b"payload"

    def test_raise_kind_fires_in_process(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV_VAR, "worker:raise")
        with pytest.raises(ChaosError):
            chaos_hook("worker")
        # Other sites are untouched.
        chaos_hook("artifact-store")

    def test_limit_caps_firings(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV_VAR, "worker:raise:1.0:2")
        for _ in range(2):
            with pytest.raises(ChaosError):
                chaos_hook("worker")
        chaos_hook("worker")  # limit exhausted: no fault

    def test_process_kinds_never_kill_the_orchestrator(self, monkeypatch):
        # If the guard failed this would os._exit the pytest process.
        monkeypatch.setenv(CHAOS_ENV_VAR, "worker:exit")
        chaos_hook("worker")

    def test_mangle_truncates_payload(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV_VAR, "result-store:truncate")
        data = b"x" * 64
        torn = chaos_mangle("result-store", data)
        assert torn == data[:32]


# ---------------------------------------------------------- resilient map


class TestResilientMap:
    def test_clean_path_matches_serial(self):
        items = list(range(10))
        with ResilientPoolBackend(jobs=2, policy=_fast_policy()) as backend:
            assert backend.map(_square, items) == SerialBackend().map(_square, items)
            assert backend.map(_square, []) == []
            assert backend.failure_counters() == FailureStats().as_dict()

    def test_retry_after_raise(self, tmp_path):
        fn = functools.partial(_flaky, fail_dir=str(tmp_path), mode="raise", failures=2)
        with ResilientPoolBackend(jobs=2, policy=_fast_policy()) as backend:
            assert backend.map(fn, [3]) == [9]
            stats = backend.stats
        assert stats.failures == 2
        assert stats.retries == 2
        assert stats.quarantined == 0

    def test_worker_exit_respawns_only_lost_worker(self, tmp_path):
        fn = functools.partial(_flaky, fail_dir=str(tmp_path), mode="exit", failures=1)
        with ResilientPoolBackend(jobs=2, policy=_fast_policy()) as backend:
            assert backend.map(fn, [2, 3, 4, 5]) == [4, 9, 16, 25]
            assert backend.stats.worker_restarts >= 1
            assert not backend.degraded

    def test_hung_item_killed_at_deadline_and_retried(self, tmp_path):
        policy = FailurePolicy(retry=RetryPolicy(max_attempts=3, base_delay=0.001, timeout=0.5))
        fn = functools.partial(_flaky, fail_dir=str(tmp_path), mode="hang", failures=1)
        start = time.monotonic()
        with ResilientPoolBackend(jobs=2, policy=policy) as backend:
            assert backend.map(fn, [6]) == [36]
            assert backend.stats.worker_restarts >= 1
        assert time.monotonic() - start < 30.0  # killed at ~0.5s, not after 60s

    def test_quarantine_records_poisoned_item_in_place(self):
        fn = functools.partial(_fail_item, poison=2)
        with ResilientPoolBackend(jobs=2, policy=_fast_policy()) as backend:
            with pytest.warns(RuntimeWarning, match="quarantined"):
                results = backend.map(fn, [0, 1, 2, 3, 4])
            assert backend.stats.quarantined == 1
        assert results[0:2] == [0, 1]
        assert results[3:] == [9, 16]
        quarantined = results[2]
        assert isinstance(quarantined, Quarantined)
        assert quarantined.attempts == 3
        assert "poisoned" in quarantined.error

    def test_quarantine_disabled_raises(self):
        fn = functools.partial(_fail_item, poison=1)
        with ResilientPoolBackend(jobs=2, policy=_fast_policy(quarantine=False)) as backend:
            with pytest.raises(TaskFailedError):
                backend.map(fn, [0, 1, 2])

    def test_degrades_to_serial_after_repeated_worker_loss(self):
        policy = _fast_policy(max_pool_failures=1)
        with ResilientPoolBackend(jobs=2, policy=policy) as backend:
            with pytest.warns(RuntimeWarning, match="degrading"):
                results = backend.map(_exit_in_child, [1, 2, 3, 4, 5])
            assert results == [1, 4, 9, 16, 25]
            assert backend.degraded
            assert backend.stats.degraded == 1
            # The degraded backend keeps serving map calls, in-process.
            assert backend.map(_square, [7]) == [49]

    def test_degrade_disabled_keeps_respawning(self, tmp_path):
        policy = FailurePolicy(
            retry=RetryPolicy(max_attempts=4, base_delay=0.001),
            degrade_to_serial=False,
            max_pool_failures=1,
        )
        fn = functools.partial(_flaky, fail_dir=str(tmp_path), mode="exit", failures=2)
        with ResilientPoolBackend(jobs=2, policy=policy) as backend:
            assert backend.map(fn, [3]) == [9]
            assert not backend.degraded
            assert backend.stats.worker_restarts >= 2

    def test_map_identical_under_injected_chaos(self, monkeypatch):
        # Up to 2 injected raises per worker process; with 8 attempts per
        # item no item can exhaust its schedule, so the fault schedule must
        # be invisible in the results.
        monkeypatch.setenv(CHAOS_ENV_VAR, "worker:raise:1.0:2")
        policy = FailurePolicy(retry=RetryPolicy(max_attempts=8, base_delay=0.001))
        items = list(range(12))
        with ResilientPoolBackend(jobs=2, policy=policy) as backend:
            results = backend.map(_square, items)
            assert backend.stats.retries > 0
        monkeypatch.delenv(CHAOS_ENV_VAR)
        assert results == SerialBackend().map(_square, items)


# ------------------------------------------------------------ GA integration


class TestGAUnderFaults:
    def test_resilient_backend_matches_serial_ga(self):
        params = GAParameters(population_size=8, generations=4, seed=2010)
        serial = GeneticAlgorithm(SPACE, sphere_fitness, params, backend=SerialBackend()).run()
        with ResilientPoolBackend(jobs=2, policy=_fast_policy()) as backend:
            resilient = GeneticAlgorithm(SPACE, sphere_fitness, params, backend=backend).run()
        assert resilient.best.genome == serial.best.genome
        assert resilient.best_fitness == serial.best_fitness
        assert resilient.history == serial.history
        assert resilient.quarantined == 0

    def test_quarantined_individuals_get_minus_inf_fitness(self):
        params = GAParameters(population_size=4, generations=2, seed=7)
        policy = FailurePolicy(retry=RetryPolicy(max_attempts=1, base_delay=0.0))
        with ResilientPoolBackend(jobs=2, policy=policy) as backend:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                result = GeneticAlgorithm(SPACE, _failing_fitness, params, backend=backend).run()
        assert result.quarantined > 0
        assert result.best.fitness == float("-inf")
        assert "quarantined" in result.best.payload
        assert result.best.payload["quarantined"]["attempts"] == 1


class TestCheckpointOnInterrupt:
    def test_keyboard_interrupt_checkpoints_and_resumes_identically(self, tmp_path):
        from repro.store.checkpoint import CheckpointManager

        params = GAParameters(population_size=4, generations=3, seed=99)
        reference = GeneticAlgorithm(SPACE, sphere_fitness, params, backend=SerialBackend()).run()

        manager = CheckpointManager(tmp_path / "ga.ckpt")
        flaky = functools.partial(_interrupting_sphere, counter_dir=str(tmp_path), trigger=6)
        with pytest.raises(KeyboardInterrupt):
            GeneticAlgorithm(SPACE, flaky, params, backend=SerialBackend()).run(checkpoint=manager)
        assert manager.exists()

        resumed = GeneticAlgorithm(SPACE, sphere_fitness, params, backend=SerialBackend()).run(
            checkpoint=manager
        )
        assert resumed.best.genome == reference.best.genome
        assert resumed.best_fitness == reference.best_fitness
        assert resumed.history == reference.history

    def test_aborting_worker_failure_checkpoints_too(self, tmp_path):
        from repro.store.checkpoint import CheckpointManager

        params = GAParameters(population_size=4, generations=3, seed=99)
        manager = CheckpointManager(tmp_path / "ga.ckpt")
        policy = FailurePolicy(retry=RetryPolicy(max_attempts=1, base_delay=0.0), quarantine=False)
        with ResilientPoolBackend(jobs=2, policy=policy) as backend:
            with pytest.raises(TaskFailedError):
                GeneticAlgorithm(SPACE, _failing_fitness, params, backend=backend).run(
                    checkpoint=manager
                )
        assert manager.exists()


# -------------------------------------------------------- salvageable stores


def _record_line(digest: str) -> bytes:
    record = {"schema_version": SCHEMA_VERSION, "digest": digest, "result": {"rows": []}}
    return json.dumps(record, separators=(",", ":")).encode("utf-8") + b"\n"


def _write_store(root: Path, lines: bytes) -> Path:
    root.mkdir(parents=True, exist_ok=True)
    meta = {"schema_version": SCHEMA_VERSION, "backend": "jsonl"}
    (root / META_FILE).write_text(json.dumps(meta) + "\n")
    (root / JSONL_FILE).write_bytes(lines)
    return root


class TestStoreSalvage:
    def test_torn_final_record_is_salvaged_and_logged(self, tmp_path, caplog):
        torn = _record_line("cccc")[:20]  # unparseable fragment, no newline
        root = _write_store(tmp_path / "store", _record_line("aaaa") + _record_line("bbbb") + torn)
        with caplog.at_level("WARNING", logger="repro.store"):
            store = ResultStore(root)
        assert store.digests() == ["aaaa", "bbbb"]
        assert any("salvaged result store" in record.message for record in caplog.records)

    def test_torn_schema_fragment_is_salvaged(self, tmp_path):
        # Parses as JSON but fails the schema check; salvageable only
        # because the missing trailing newline proves the line was torn.
        root = _write_store(tmp_path / "store", _record_line("aaaa") + b'{"schema_')
        assert ResultStore(root).digests() == ["aaaa"]

    def test_mid_file_corruption_still_raises(self, tmp_path):
        root = _write_store(tmp_path / "store", b"not json\n" + _record_line("aaaa"))
        with pytest.raises(StoreError):
            ResultStore(root)

    def test_unsupported_schema_on_complete_line_raises(self, tmp_path):
        bad = b'{"schema_version": 99, "digest": "x", "result": {}}\n'
        root = _write_store(tmp_path / "store", bad)
        with pytest.raises(StoreError):
            ResultStore(root)


class TestSqliteRetry:
    def test_retries_locked_database(self):
        calls = []

        def flaky_write():
            calls.append(1)
            if len(calls) < 3:
                raise sqlite3.OperationalError("database is locked")
            return "done"

        assert retry_locked(flaky_write, "test write") == "done"
        assert len(calls) == 3

    def test_non_lock_errors_raise_immediately(self):
        calls = []

        def broken_write():
            calls.append(1)
            raise sqlite3.OperationalError("no such table: results")

        with pytest.raises(sqlite3.OperationalError):
            retry_locked(broken_write, "test write")
        assert len(calls) == 1


class TestFsck:
    def test_clean_store(self, tmp_path):
        root = _write_store(tmp_path / "store", _record_line("aaaa") + _record_line("bbbb"))
        report = fsck_store(root)
        assert report.clean
        assert report.intact_results == 2

    def test_missing_directory_is_a_finding(self, tmp_path):
        report = fsck_store(tmp_path / "nope")
        assert not report.clean

    def test_torn_tail_reported_then_repaired(self, tmp_path):
        intact = _record_line("aaaa")
        root = _write_store(tmp_path / "store", intact + _record_line("bbbb")[:25])
        report = fsck_store(root)
        assert len(report.findings) == 1
        finding = report.findings[0]
        assert finding.repairable and not finding.repaired
        assert "truncated final record" in finding.problem

        repaired = fsck_store(root, repair=True)
        assert repaired.findings[0].repaired
        assert (root / JSONL_FILE).read_bytes() == intact
        assert fsck_store(root).clean

    def test_mid_file_corruption_reported_not_repairable(self, tmp_path):
        root = _write_store(tmp_path / "store", b"garbage\n" + _record_line("aaaa"))
        report = fsck_store(root, repair=True)
        assert any(not finding.repairable for finding in report.findings)
        # Repair must not touch unsalvageable damage.
        assert (root / JSONL_FILE).read_bytes().startswith(b"garbage\n")

    def test_unloadable_checkpoint_and_tmp_debris_repaired(self, tmp_path):
        root = _write_store(tmp_path / "store", _record_line("aaaa"))
        checkpoint_dir = root / "checkpoints"
        checkpoint_dir.mkdir()
        (checkpoint_dir / "dead.ckpt").write_bytes(b"not a pickle")
        (root / "results.jsonl.tmp").write_text("partial")

        report = fsck_store(root)
        assert len(report.findings) == 2
        assert all(f.repairable and not f.repaired for f in report.findings)

        fsck_store(root, repair=True)
        assert not (checkpoint_dir / "dead.ckpt").exists()
        assert not (root / "results.jsonl.tmp").exists()
        assert fsck_store(root).clean


# ------------------------------------------------------- spec / session knobs


class TestSpecRetryKnobs:
    def test_validation(self):
        with pytest.raises(SpecError):
            RunSpec(kind="simulate", name="x", retries=0).validate()
        with pytest.raises(SpecError):
            RunSpec(kind="simulate", name="x", task_timeout=-1.0).validate()
        with pytest.raises(SpecError):
            RunSpec(kind="simulate", name="x", task_timeout=True).validate()

    def test_digest_unchanged_when_knobs_unset(self):
        spec = RunSpec(kind="simulate", name="x", workloads=("crc32_proxy",))
        data = spec.to_json_dict()
        assert "retries" not in data
        assert "task_timeout" not in data
        tuned = spec.replace(retries=2, task_timeout=30.0)
        assert tuned.to_json_dict()["retries"] == 2
        assert tuned.digest != spec.digest

    def test_sweep_children_inherit_retry_knobs(self):
        sweep = RunSpec(
            kind="sweep",
            name="s",
            retries=4,
            task_timeout=9.0,
            base=RunSpec(kind="simulate", name="s/wl", workloads=("crc32_proxy",)),
            axes={"fault_rates": ("unit", "rhc")},
        )
        children = sweep.expand()
        assert len(children) == 2
        assert all(child.retries == 4 for child in children)
        assert all(child.task_timeout == pytest.approx(9.0) for child in children)

    def test_session_retry_precedence(self, monkeypatch):
        from repro.api.session import Session

        monkeypatch.delenv("REPRO_RETRY_MAX_ATTEMPTS", raising=False)
        monkeypatch.delenv("REPRO_RETRY_BASE_DELAY", raising=False)
        monkeypatch.delenv("REPRO_RETRY_TIMEOUT", raising=False)
        plain = RunSpec(kind="simulate", name="x", workloads=("crc32_proxy",))
        tuned = plain.replace(retries=2, task_timeout=30.0)

        with Session() as session:
            # Library defaults when nothing is set.
            assert session.resolve_retry(plain) == RetryPolicy()
            # Spec fields override the environment/defaults.
            policy = session.resolve_retry(tuned)
            assert policy.max_attempts == 2
            assert policy.timeout == pytest.approx(30.0)

        monkeypatch.setenv("REPRO_RETRY_MAX_ATTEMPTS", "6")
        with Session() as session:
            assert session.resolve_retry(plain).max_attempts == 6
            # Spec still wins over the environment.
            assert session.resolve_retry(tuned).max_attempts == 2

        pinned = RetryPolicy(max_attempts=9, timeout=1.5)
        with Session(retry=pinned) as session:
            # A pinned policy (CLI --retries/--task-timeout) beats everything.
            assert session.resolve_retry(tuned) == pinned
