"""Tests for the parallel evaluation backends and worker-count resolution."""

from __future__ import annotations

import pytest

from repro.ga.engine import GAParameters, GeneticAlgorithm
from repro.ga.genes import FloatGene, GeneSpace, IntGene
from repro.ga.individual import Individual
from repro.parallel.backends import (
    JOBS_ENV_VAR,
    ProcessPoolBackend,
    SerialBackend,
    create_backend,
    resolve_jobs,
)

SPACE = GeneSpace([IntGene("a", 0, 50), IntGene("b", 0, 50), FloatGene("c", 0.0, 1.0)])


def sphere_fitness(individual: Individual) -> float:
    """Picklable objective: maximise a + b + 50*c (optimum 150)."""
    genome = individual.genome
    individual.payload["echo"] = genome["a"]
    return float(genome["a"]) + float(genome["b"]) + 50.0 * float(genome["c"])


def _square(value: int) -> int:
    return value * value


class TestResolveJobs:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "8")
        assert resolve_jobs(3) == 3

    def test_environment_fallback(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "5")
        assert resolve_jobs() == 5

    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
        assert resolve_jobs() == 1

    def test_invalid_environment_rejected(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "many")
        with pytest.raises(ValueError):
            resolve_jobs()

    def test_floor_at_one(self):
        assert resolve_jobs(0) == 1
        assert resolve_jobs(-4) == 1

    def test_create_backend_kinds(self, monkeypatch):
        from repro.parallel.resilience import ResilientPoolBackend

        monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
        assert isinstance(create_backend(), SerialBackend)
        backend = create_backend(2)
        assert isinstance(backend, ResilientPoolBackend)
        backend.close()


class TestSerialBackend:
    def test_map_preserves_order(self):
        assert SerialBackend().map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_evaluate_individuals_returns_payloads(self):
        individuals = [Individual(genome={"a": 10, "b": 0, "c": 0.0})]
        outcomes = SerialBackend().evaluate_individuals(sphere_fitness, individuals)
        assert outcomes == [(10.0, {"echo": 10})]
        # The serial path mutates the caller's individual in place.
        assert individuals[0].payload["echo"] == 10

    def test_empty_batch(self):
        assert SerialBackend().evaluate_individuals(sphere_fitness, []) == []


class TestProcessPoolBackend:
    def test_map_preserves_order(self):
        with ProcessPoolBackend(jobs=2) as backend:
            assert backend.map(_square, list(range(10))) == [n * n for n in range(10)]

    def test_evaluate_matches_serial(self):
        individuals = [
            Individual(genome={"a": a, "b": 50 - a, "c": a / 50.0}) for a in range(6)
        ]
        serial = SerialBackend().evaluate_individuals(
            sphere_fitness, [ind.copy() for ind in individuals]
        )
        with ProcessPoolBackend(jobs=2) as backend:
            parallel = backend.evaluate_individuals(
                sphere_fitness, [ind.copy() for ind in individuals]
            )
        assert serial == parallel

    def test_pool_reused_across_calls(self):
        with ProcessPoolBackend(jobs=2) as backend:
            backend.map(_square, [1, 2])
            pool = backend._pool
            backend.map(_square, [3, 4])
            assert backend._pool is pool

    def test_rejects_nonpositive_jobs(self):
        with pytest.raises(ValueError):
            ProcessPoolBackend(jobs=0)


class TestSeedStability:
    """Same GA seed must give identical results for any worker count."""

    def test_one_vs_four_workers_identical(self):
        params = GAParameters(population_size=10, generations=5, seed=2010)
        serial_result = GeneticAlgorithm(
            SPACE, sphere_fitness, params, backend=SerialBackend()
        ).run()
        with ProcessPoolBackend(jobs=4) as backend:
            parallel_result = GeneticAlgorithm(
                SPACE, sphere_fitness, params, backend=backend
            ).run()

        assert serial_result.best.genome == parallel_result.best.genome
        assert serial_result.best_fitness == parallel_result.best_fitness
        assert serial_result.history == parallel_result.history
        assert serial_result.evaluations == parallel_result.evaluations
        assert serial_result.cache_hits == parallel_result.cache_hits
