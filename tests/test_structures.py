"""Tests for ACE accumulators and per-structure accounting."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.uarch.config import baseline_config, config_a
from repro.uarch.structures import AceAccumulator, StructureName, core_structure_accumulators


class TestStructureName:
    def test_queueing_membership(self):
        assert StructureName.IQ.is_queueing
        assert StructureName.ROB.is_queueing
        assert StructureName.FU.is_queueing
        assert not StructureName.RF.is_queueing
        assert not StructureName.DL1.is_queueing

    def test_core_membership(self):
        assert StructureName.RF.is_core
        assert StructureName.IQ.is_core
        assert not StructureName.DL1.is_core
        assert not StructureName.L2.is_core


class TestAceAccumulator:
    def test_total_bits(self):
        accumulator = AceAccumulator(StructureName.IQ, entries=20, bits_per_entry=32)
        assert accumulator.total_bits == 640

    def test_full_occupancy_full_ace(self):
        accumulator = AceAccumulator(StructureName.IQ, entries=2, bits_per_entry=10)
        accumulator.add_interval(0, 100, ace_fraction=1.0)
        accumulator.add_interval(0, 100, ace_fraction=1.0)
        assert accumulator.avf(100) == pytest.approx(1.0)
        assert accumulator.average_occupancy(100) == pytest.approx(1.0)

    def test_partial_ace_fraction(self):
        accumulator = AceAccumulator(StructureName.LQ_DATA, entries=1, bits_per_entry=64)
        accumulator.add_interval(0, 50, ace_fraction=0.5)
        assert accumulator.avf(100) == pytest.approx(0.25)
        assert accumulator.average_occupancy(100) == pytest.approx(0.5)

    def test_unace_occupancy(self):
        accumulator = AceAccumulator(StructureName.ROB, entries=1, bits_per_entry=76)
        accumulator.add_interval(0, 100, ace_fraction=0.0)
        assert accumulator.avf(100) == 0.0
        assert accumulator.average_occupancy(100) == pytest.approx(1.0)

    def test_empty_interval_ignored(self):
        accumulator = AceAccumulator(StructureName.ROB, entries=1, bits_per_entry=76)
        accumulator.add_interval(50, 50, ace_fraction=1.0)
        assert accumulator.ace_bit_cycles == 0.0

    def test_reversed_interval_rejected(self):
        accumulator = AceAccumulator(StructureName.ROB, entries=1, bits_per_entry=76)
        with pytest.raises(ValueError):
            accumulator.add_interval(60, 40, ace_fraction=1.0)
        # The fraction is validated even when the interval is degenerate.
        with pytest.raises(ValueError):
            accumulator.add_interval(60, 40, ace_fraction=-0.5)
        with pytest.raises(ValueError):
            accumulator.add_interval(10, 10, ace_fraction=2.0)
        assert accumulator.ace_bit_cycles == 0.0

    def test_ace_fraction_validation(self):
        accumulator = AceAccumulator(StructureName.ROB, entries=1, bits_per_entry=76)
        with pytest.raises(ValueError):
            accumulator.add_interval(0, 10, ace_fraction=1.5)

    def test_add_bit_cycles(self):
        accumulator = AceAccumulator(StructureName.DL1, entries=4, bits_per_entry=512)
        accumulator.add_bit_cycles(1024.0)
        assert accumulator.avf(1) == pytest.approx(1024.0 / (4 * 512))

    def test_add_bit_cycles_validation(self):
        accumulator = AceAccumulator(StructureName.DL1, entries=4, bits_per_entry=512)
        with pytest.raises(ValueError):
            accumulator.add_bit_cycles(-1.0)

    def test_zero_cycles_zero_avf(self):
        accumulator = AceAccumulator(StructureName.IQ, entries=2, bits_per_entry=32)
        assert accumulator.avf(0) == 0.0
        assert accumulator.average_occupancy(0) == 0.0

    def test_construction_validation(self):
        with pytest.raises(ValueError):
            AceAccumulator(StructureName.IQ, entries=0, bits_per_entry=32)

    @given(
        intervals=st.lists(
            st.tuples(st.integers(0, 500), st.integers(0, 500), st.floats(0.0, 1.0)),
            max_size=40,
        )
    )
    def test_avf_never_exceeds_occupancy(self, intervals):
        accumulator = AceAccumulator(StructureName.ROB, entries=4, bits_per_entry=76)
        for start, duration, fraction in intervals:
            accumulator.add_interval(start, start + duration, ace_fraction=fraction)
        total_cycles = 2000
        assert accumulator.avf(total_cycles) <= accumulator.average_occupancy(total_cycles) + 1e-9


class TestCoreStructureAccumulators:
    def test_baseline_structures_present(self, baseline):
        accumulators = core_structure_accumulators(baseline)
        expected = {
            StructureName.IQ,
            StructureName.ROB,
            StructureName.LQ_TAG,
            StructureName.LQ_DATA,
            StructureName.SQ_TAG,
            StructureName.SQ_DATA,
            StructureName.RF,
            StructureName.FU,
        }
        assert set(accumulators) == expected

    def test_baseline_bit_counts_match_table1(self, baseline):
        accumulators = core_structure_accumulators(baseline)
        assert accumulators[StructureName.IQ].total_bits == 20 * 32
        assert accumulators[StructureName.ROB].total_bits == 80 * 76
        assert accumulators[StructureName.RF].total_bits == 80 * 64
        lsq_bits = accumulators[StructureName.LQ_TAG].total_bits + accumulators[StructureName.LQ_DATA].total_bits
        assert lsq_bits == 32 * 128

    def test_config_a_scales_structures(self):
        accumulators = core_structure_accumulators(config_a())
        assert accumulators[StructureName.IQ].entries == 32
        assert accumulators[StructureName.ROB].entries == 96
        assert accumulators[StructureName.RF].entries == 96

    def test_rejects_non_config(self):
        with pytest.raises(TypeError):
            core_structure_accumulators("not a config")  # type: ignore[arg-type]
