"""Concurrent store-access tests: multiple writers, one store directory.

The serve daemon and an offline ``repro run --store`` can share one store
directory, so both backends must survive genuinely concurrent appends —
including two writers racing to persist the *same* digest.  Each test
forks real processes (threads would share the JSONL file handle and the
sqlite connection, hiding the races that matter) and then checks that
every record survived intact and ``repro fsck`` stays clean.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.api.spec import RunResult, RunSpec
from repro.cli import main
from repro.store import fsck_store, open_store

#: Writers per test and unique records per writer — enough overlap to hit
#: the lock paths without making the suite slow.
WRITERS = 4
RECORDS = 6


def _result(name: str) -> RunResult:
    spec = RunSpec(kind="simulate", name=name)
    return RunResult(spec=spec, rows=[{"name": name, "value": 2.25}])


def _writer(root: str, backend: str, index: int, barrier) -> None:
    """One writer process: the shared digest first, then unique records."""
    with open_store(root, backend=backend) as store:
        barrier.wait(timeout=30.0)  # line every writer up on the race
        store.put(_result("shared"))
        for record in range(RECORDS):
            store.put(_result(f"writer-{index}-{record}"))


def _race(tmp_path, backend: str):
    root = tmp_path / "store"
    open_store(root, backend=backend).close()  # settle meta.json up front
    context = multiprocessing.get_context()
    barrier = context.Barrier(WRITERS)
    processes = [
        context.Process(target=_writer, args=(str(root), backend, index, barrier))
        for index in range(WRITERS)
    ]
    for process in processes:
        process.start()
    for process in processes:
        process.join(timeout=60.0)
        assert process.exitcode == 0
    return root


@pytest.mark.parametrize("backend", ["jsonl", "sqlite"])
def test_concurrent_writers_all_records_survive(tmp_path, backend):
    root = _race(tmp_path, backend)
    with open_store(root) as store:
        digests = store.digests()
        # Every unique record plus exactly one entry for the shared digest.
        assert len(digests) == WRITERS * RECORDS + 1
        shared = store.get(_result("shared").spec_digest)
        assert shared.rows == [{"name": "shared", "value": 2.25}]
        for index in range(WRITERS):
            for record in range(RECORDS):
                name = f"writer-{index}-{record}"
                assert store.get(_result(name).spec_digest).rows[0]["name"] == name


@pytest.mark.parametrize("backend", ["jsonl", "sqlite"])
def test_concurrent_writers_leave_store_fsck_clean(tmp_path, backend):
    root = _race(tmp_path, backend)
    report = fsck_store(root)
    assert report.clean, [finding.describe() for finding in report.findings]
    assert report.intact_results >= WRITERS * RECORDS + 1
    assert main(["fsck", str(root)]) == 0


def test_same_digest_append_race_keeps_one_coherent_record(tmp_path):
    """The duplicate-digest race appends identical JSONL lines, never torn ones."""
    root = _race(tmp_path, "jsonl")
    lines = (root / "results.jsonl").read_text().splitlines()
    assert all(line.startswith('{"schema_version"') for line in lines)
    shared_digest = _result("shared").spec_digest
    duplicates = [line for line in lines if shared_digest in line]
    # Up to one line per writer, all byte-identical — load keeps one record.
    assert 1 <= len(duplicates) <= WRITERS
    assert len(set(duplicates)) == 1
