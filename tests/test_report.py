"""Tests for SER report construction."""

from __future__ import annotations

import pytest

from repro.avf.analysis import StructureGroup
from repro.avf.report import SerReport, build_report
from repro.isa import FixedPattern, Program, make_alu, make_load, make_store
from repro.uarch.faultrates import rhc_fault_rates, unit_fault_rates
from repro.uarch.pipeline import OutOfOrderCore
from repro.uarch.structures import StructureName


@pytest.fixture(scope="module")
def report_pair(request):
    from repro.memory.cache import CacheConfig
    from repro.memory.tlb import TlbConfig
    from repro.uarch.config import MachineConfig

    config = MachineConfig(
        name="small",
        iq_entries=8, rob_entries=24, lq_entries=8, sq_entries=8, rename_registers=64,
        dl1=CacheConfig(name="dl1", size_bytes=4 * 1024, associativity=2, line_bytes=64, hit_latency=3),
        il1=CacheConfig(name="il1", size_bytes=4 * 1024, associativity=2, line_bytes=64, hit_latency=1),
        l2=CacheConfig(name="l2", size_bytes=32 * 1024, associativity=1, line_bytes=64, hit_latency=7),
        dtlb=TlbConfig(entries=16, page_bytes=4096),
        memory_latency=100,
    )
    pattern = FixedPattern(address=64)
    body = [make_load(3, pattern, srcs=[2]), make_alu(4, [3]), make_store(pattern, srcs=[4])]
    program = Program(name="report_sample", body=body, iterations=10**9)
    result = OutOfOrderCore(config, seed=1).run(program, max_instructions=600)
    return result, build_report(result, unit_fault_rates())


class TestBuildReport:
    def test_identity_fields(self, report_pair):
        result, report = report_pair
        assert report.program_name == "report_sample"
        assert report.config_name == "small"
        assert report.fault_rate_name == "unit"
        assert report.total_cycles == result.stats.total_cycles
        assert report.committed_instructions == result.stats.committed_instructions

    def test_structure_avf_matches_result(self, report_pair):
        result, report = report_pair
        for structure in result.accumulators:
            assert report.avf(structure) == pytest.approx(result.avf(structure))

    def test_groups_present(self, report_pair):
        _, report = report_pair
        for group in StructureGroup:
            assert 0.0 <= report.ser(group) <= 1.0

    def test_core_ser_property(self, report_pair):
        _, report = report_pair
        assert report.core_ser == report.ser(StructureGroup.CORE)

    def test_stats_keys(self, report_pair):
        _, report = report_pair
        for key in ("branch_misprediction_rate", "dl1_miss_rate", "l2_miss_rate", "dtlb_miss_rate"):
            assert key in report.stats

    def test_default_fault_rates(self, report_pair):
        result, _ = report_pair
        report = build_report(result)
        assert report.fault_rate_name == "unit"

    def test_fault_rates_scale_group_ser(self, report_pair):
        result, unit_report = report_pair
        rhc_report = build_report(result, rhc_fault_rates())
        assert rhc_report.ser(StructureGroup.CORE) <= unit_report.ser(StructureGroup.CORE)
        # Structure AVF itself is fault-rate independent.
        for structure in result.accumulators:
            assert rhc_report.avf(structure) == pytest.approx(unit_report.avf(structure))


class TestAsRow:
    def test_row_contents(self, report_pair):
        _, report = report_pair
        row = report.as_row()
        assert row["program"] == "report_sample"
        assert "ser_core" in row
        assert "avf_rob" in row
        assert isinstance(row["ipc"], float)

    def test_row_values_rounded(self, report_pair):
        _, report = report_pair
        row = report.as_row()
        assert row["ser_core"] == round(report.core_ser, 4)


class TestSerReportIsFrozen:
    def test_frozen(self, report_pair):
        _, report = report_pair
        with pytest.raises(AttributeError):
            report.program_name = "other"  # type: ignore[misc]
