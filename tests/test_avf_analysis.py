"""Tests for SER computation, grouping and estimation methodologies."""

from __future__ import annotations

import pytest

from repro.avf.analysis import (
    StructureGroup,
    group_structures,
    instantaneous_worst_case_bound,
    normalized_group_ser,
    overall_core_ser,
    raw_circuit_ser,
    sum_of_highest_per_structure_ser,
)
from repro.isa import FixedPattern, make_alu, make_load, make_store, Program
from repro.uarch.config import baseline_config, config_a
from repro.uarch.faultrates import edr_fault_rates, rhc_fault_rates, unit_fault_rates
from repro.uarch.pipeline import OutOfOrderCore
from repro.uarch.structures import StructureName


@pytest.fixture(scope="module")
def sample_result(small_config=None):
    """A small simulation result shared by the SER computation tests."""
    from repro.uarch.config import MachineConfig
    from repro.memory.cache import CacheConfig
    from repro.memory.tlb import TlbConfig

    config = MachineConfig(
        name="small",
        iq_entries=8, rob_entries=24, lq_entries=8, sq_entries=8, rename_registers=64,
        dl1=CacheConfig(name="dl1", size_bytes=4 * 1024, associativity=2, line_bytes=64, hit_latency=3),
        il1=CacheConfig(name="il1", size_bytes=4 * 1024, associativity=2, line_bytes=64, hit_latency=1),
        l2=CacheConfig(name="l2", size_bytes=32 * 1024, associativity=1, line_bytes=64, hit_latency=7),
        dtlb=TlbConfig(entries=16, page_bytes=4096),
        memory_latency=100,
    )
    pattern = FixedPattern(address=0)
    body = [
        make_load(3, pattern, srcs=[2]),
        make_alu(4, [3]),
        make_store(pattern, srcs=[4]),
    ]
    program = Program(name="sample", body=body, iterations=10**9)
    return OutOfOrderCore(config, seed=1).run(program, max_instructions=900)


class TestGroups:
    def test_qs_members(self):
        members = group_structures(StructureGroup.QS)
        assert StructureName.IQ in members
        assert StructureName.ROB in members
        assert StructureName.FU in members
        assert StructureName.RF not in members

    def test_core_adds_rf(self):
        assert StructureName.RF in group_structures(StructureGroup.CORE)
        assert group_structures(StructureGroup.CORE) == group_structures(StructureGroup.QS_RF)

    def test_cache_groups(self):
        # The registry-level group also carries flag-gated members (the
        # optional L2 TLB); the stock cache structures are always present.
        dl1_dtlb = group_structures(StructureGroup.DL1_DTLB)
        assert {StructureName.DL1, StructureName.DTLB} <= dl1_dtlb
        assert StructureName.L2 not in dl1_dtlb
        assert group_structures(StructureGroup.L2) == {StructureName.L2}


class TestNormalizedGroupSer:
    def test_bounded_by_unit_rates(self, sample_result):
        rates = unit_fault_rates()
        for group in StructureGroup:
            value = normalized_group_ser(sample_result, group, rates)
            assert 0.0 <= value <= 1.0

    def test_equals_bit_weighted_avf_with_unit_rates(self, sample_result):
        rates = unit_fault_rates()
        members = group_structures(StructureGroup.QS)
        bits = {
            name: sample_result.accumulators[name].total_bits
            for name in members
            if name in sample_result.accumulators
        }
        expected = sum(sample_result.avf(n) * b for n, b in bits.items()) / sum(bits.values())
        assert normalized_group_ser(sample_result, StructureGroup.QS, rates) == pytest.approx(expected)

    def test_zero_rates_zero_ser(self, sample_result):
        zero = unit_fault_rates()
        for structure in StructureName:
            zero = zero.with_rate(structure, 0.0)
        assert normalized_group_ser(sample_result, StructureGroup.CORE, zero) == 0.0

    def test_edr_lower_than_unit(self, sample_result):
        unit_value = overall_core_ser(sample_result, unit_fault_rates())
        edr_value = overall_core_ser(sample_result, edr_fault_rates())
        assert edr_value <= unit_value

    def test_rhc_between_edr_and_unit(self, sample_result):
        unit_value = overall_core_ser(sample_result, unit_fault_rates())
        rhc_value = overall_core_ser(sample_result, rhc_fault_rates())
        edr_value = overall_core_ser(sample_result, edr_fault_rates())
        assert edr_value <= rhc_value <= unit_value


class TestSumOfHighest:
    def test_at_least_single_result_core_ser(self, sample_result):
        rates = unit_fault_rates()
        combined = sum_of_highest_per_structure_ser([sample_result], rates)
        assert combined == pytest.approx(overall_core_ser(sample_result, rates))

    def test_monotone_in_results(self, sample_result):
        rates = unit_fault_rates()
        single = sum_of_highest_per_structure_ser([sample_result], rates)
        double = sum_of_highest_per_structure_ser([sample_result, sample_result], rates)
        assert double == pytest.approx(single)

    def test_empty_results(self):
        assert sum_of_highest_per_structure_ser([], unit_fault_rates()) == 0.0

    def test_heterogeneous_geometries_raise(self, sample_result):
        """Regression: mixing results from different machine geometries used
        to silently take bits from the first result; it must raise instead."""
        from repro.isa import FixedPattern, Program, make_alu, make_load, make_store
        from repro.uarch.config import MachineConfig
        from repro.memory.cache import CacheConfig
        from repro.memory.tlb import TlbConfig
        from repro.uarch.pipeline import OutOfOrderCore

        bigger = MachineConfig(
            name="bigger",
            iq_entries=16, rob_entries=48, lq_entries=16, sq_entries=16, rename_registers=80,
            dl1=CacheConfig(name="dl1", size_bytes=4 * 1024, associativity=2, line_bytes=64, hit_latency=3),
            il1=CacheConfig(name="il1", size_bytes=4 * 1024, associativity=2, line_bytes=64, hit_latency=1),
            l2=CacheConfig(name="l2", size_bytes=32 * 1024, associativity=1, line_bytes=64, hit_latency=7),
            dtlb=TlbConfig(entries=16, page_bytes=4096),
            memory_latency=100,
        )
        pattern = FixedPattern(address=0)
        body = [make_load(3, pattern, srcs=[2]), make_alu(4, [3]), make_store(pattern, srcs=[4])]
        program = Program(name="sample", body=body, iterations=10**9)
        other = OutOfOrderCore(bigger, seed=1).run(program, max_instructions=400)

        with pytest.raises(ValueError, match="heterogeneous bit counts"):
            sum_of_highest_per_structure_ser([sample_result, other], unit_fault_rates())


class TestRawCircuitSer:
    def test_baseline_is_one(self):
        assert raw_circuit_ser(baseline_config(), unit_fault_rates()) == pytest.approx(1.0)

    def test_rhc_reduction(self):
        value = raw_circuit_ser(baseline_config(), rhc_fault_rates())
        # ROB/LQ/SQ hardened: the bit-weighted raw rate drops to ~0.52.
        assert 0.4 < value < 0.7
        assert value < 1.0

    def test_edr_reduction(self):
        value = raw_circuit_ser(baseline_config(), edr_fault_rates())
        assert 0.2 < value < 0.4


class TestInstantaneousWorstCaseBound:
    def test_baseline_close_to_paper_value(self):
        """The paper computes 0.899 units/bit for the baseline (Section VI)."""
        bound = instantaneous_worst_case_bound(baseline_config())
        assert 0.85 < bound < 0.95

    def test_bound_below_one(self):
        assert instantaneous_worst_case_bound(baseline_config()) < 1.0

    def test_config_a_bound_differs(self):
        assert instantaneous_worst_case_bound(config_a()) != pytest.approx(
            instantaneous_worst_case_bound(baseline_config())
        )

    def test_fu_excluded(self):
        """FUs are idle in the miss shadow, so hardening them changes nothing."""
        hardened_fu = unit_fault_rates().with_rate(StructureName.FU, 0.0)
        assert instantaneous_worst_case_bound(baseline_config(), hardened_fu) == pytest.approx(
            instantaneous_worst_case_bound(baseline_config())
        )

    def test_rob_protection_lowers_bound(self):
        protected = unit_fault_rates().with_rate(StructureName.ROB, 0.0)
        assert instantaneous_worst_case_bound(baseline_config(), protected) < \
            instantaneous_worst_case_bound(baseline_config())

    def test_stressmark_should_stay_below_bound(self, sample_result):
        """Any real program's queue SER stays below the instantaneous bound."""
        bound = instantaneous_worst_case_bound(baseline_config())
        # The sample program is tiny, but the invariant must hold for it too
        # (its QS SER is far below the bound).
        qs = normalized_group_ser(sample_result, StructureGroup.QS, unit_fault_rates())
        assert qs < bound
