"""Differential suite: generated kernels vs the interpreted reference loop.

Every comparison checks *bit-identity*, not closeness: total cycles, commit
counters, branch/miss statistics, and every ledger account's occupancy and
ACE bit-cycle totals must match exactly (same float addition order, same RNG
consumption).  Programs cover the stressmark generator's output, the
synthetic workload proxies, and seeded randomized programs over the whole
ISA; configurations cover the paper baseline, a constrained derivative
(small queues, fewer architected registers than the ISA — exercising the
kernel's non-resident register path), and the ``extended`` config (store
buffer + L2 TLB).
"""

from __future__ import annotations

import pytest

from repro.isa.instructions import (
    OperandWidth,
    make_alu,
    make_branch,
    make_div,
    make_load,
    make_mul,
    make_nop,
    make_prefetch,
    make_store,
)
from repro.isa.memoryref import (
    FixedPattern,
    LineCoverPattern,
    PointerChasePattern,
    RandomPattern,
    StridedPattern,
)
from repro.isa.program import BranchBehavior, Program, WarmupRegion
from repro.stressmark.generator import StressmarkGenerator, reference_knobs
from repro.uarch import kernel, kernel_batch, kernel_vector
from repro.uarch.config import MachineConfig, baseline_config, config_a, extended_config
from repro.uarch.kernel_backends import KERNEL_BACKENDS, SOURCE, VECTOR
from repro.uarch.pipeline import OutOfOrderCore
from repro.utils.rng import DeterministicRng
from repro.workloads.suite import all_profiles
from repro.workloads.synthetic import build_workload

STAT_FIELDS = (
    "total_cycles",
    "committed_instructions",
    "committed_ace_instructions",
    "branch_count",
    "branch_mispredictions",
    "l2_misses",
    "dl1_miss_rate",
    "l2_miss_rate",
    "dtlb_miss_rate",
)


def constrained_config() -> MachineConfig:
    """Small queues + fewer architected registers than the ISA exposes."""
    return baseline_config().derive(
        name="constrained",
        iq_entries=4,
        rob_entries=12,
        lq_entries=4,
        sq_entries=4,
        rename_registers=40,
        architected_registers=24,
        int_alus=1,
        int_multipliers=1,
        memory_issue_width=1,
        dispatch_width=2,
        commit_width=2,
    )


def assert_identical(reference, candidate, label: str) -> None:
    """Exact (bitwise) equality of two SimulationResults."""
    for fieldname in STAT_FIELDS:
        ref_value = getattr(reference.stats, fieldname)
        got_value = getattr(candidate.stats, fieldname)
        assert ref_value == got_value, f"{label}: stats.{fieldname} {ref_value} != {got_value}"
    assert list(reference.accumulators) == list(candidate.accumulators), f"{label}: account order"
    for name, ref_account in reference.accumulators.items():
        got_account = candidate.accumulators[name]
        assert ref_account.occupied_entry_cycles == got_account.occupied_entry_cycles, (
            f"{label}: {name} occupancy"
        )
        assert ref_account.ace_bit_cycles == got_account.ace_bit_cycles, f"{label}: {name} ACE"


def run_both(config, program, max_instructions, seed=3):
    core = OutOfOrderCore(config, seed=seed)
    reference = core.run_interpreted(program, max_instructions=max_instructions)
    kernel_run = kernel.kernel_for(config, program)
    assert kernel_run is not None, "kernel generation failed"
    candidate = kernel_run(core, program, max_instructions)
    return reference, candidate


def random_program(seed: int, name: str) -> Program:
    """A seeded random program spanning the whole ISA and pattern set."""
    rng = DeterministicRng(seed)
    body = []
    branch_behaviors = {}
    patterns = [
        FixedPattern(address=rng.randint(0, 1 << 16) * 8),
        StridedPattern(base=8192, stride=rng.randint(8, 256), region=1 << rng.randint(12, 18)),
        PointerChasePattern(base=1 << 20, stride=64, region=1 << 16),
        LineCoverPattern(base=4096, line_bytes=64, region=1 << 14,
                         slot=rng.randint(0, 1), slots=2, iteration_offset=rng.randint(-1, 1)),
        RandomPattern(base=0, region=1 << rng.randint(12, 20)),
    ]
    size = rng.randint(6, 24)
    for index in range(size):
        kind = rng.randint(0, 8)
        width = rng.choice([OperandWidth.WORD32, OperandWidth.WORD64])
        ace = rng.coin(0.8)
        dest = rng.randint(0, 31)
        srcs = [rng.randint(0, 31) for _ in range(rng.randint(0, 2))]
        if kind <= 2:
            body.append(make_alu(dest, srcs, width=width, ace=ace))
        elif kind == 3:
            body.append(make_mul(dest, srcs, width=width, ace=ace))
        elif kind == 4:
            body.append(make_div(dest, srcs, width=width, ace=ace))
        elif kind == 5:
            body.append(make_load(dest, rng.choice(patterns), srcs=srcs, width=width, ace=ace))
        elif kind == 6:
            body.append(make_store(rng.choice(patterns), srcs=srcs or [dest], width=width, ace=ace))
        elif kind == 7:
            if rng.coin(0.3):
                body.append(make_nop())
            else:
                body.append(make_prefetch(rng.choice(patterns)))
        else:
            body.append(make_branch(srcs=srcs, taken_probability=rng.uniform(0.0, 1.0), ace=ace))
            if rng.coin(0.5):
                branch_behaviors[index] = BranchBehavior.LOOP_CLOSING
    metadata = {}
    if rng.coin(0.5):
        metadata = {"frontend_miss_rate": rng.uniform(0.001, 0.05), "frontend_miss_penalty": rng.randint(4, 16)}
    return Program(
        name=name,
        body=body,
        iterations=rng.randint(20, 4000),
        branch_behaviors=branch_behaviors,
        warmup_regions=[WarmupRegion(base=4096, size_bytes=1 << 15, dirty=rng.coin(0.7))],
        metadata=metadata,
    )


class TestKernelDifferential:
    @pytest.mark.parametrize("config_factory", [baseline_config, config_a, extended_config, constrained_config])
    def test_reference_stressmark(self, config_factory):
        config = config_factory()
        generator = StressmarkGenerator(config=config, max_instructions=4_000)
        program = generator.codegen.generate(reference_knobs(config))
        reference, candidate = run_both(config, program, 4_000)
        assert_identical(reference, candidate, f"stressmark/{config.name}")

    @pytest.mark.parametrize("knob_seed", [1, 2, 3])
    def test_derived_stressmarks(self, knob_seed):
        config = baseline_config()
        generator = StressmarkGenerator(config=config, max_instructions=3_000)
        knobs = reference_knobs(config).derive(random_seed=knob_seed)
        program = generator.codegen.generate(knobs)
        reference, candidate = run_both(config, program, 3_000)
        assert_identical(reference, candidate, f"stressmark-knobs-{knob_seed}")

    @pytest.mark.parametrize("profile_index", [0, 7, 15, 23, 31])
    def test_workload_programs(self, profile_index):
        config = baseline_config()
        profile = all_profiles()[profile_index % len(all_profiles())]
        program = build_workload(profile, config, seed=11)
        reference, candidate = run_both(config, program, 3_000)
        assert_identical(reference, candidate, f"workload/{profile.name}")

    @pytest.mark.parametrize("seed", range(8))
    def test_randomized_programs(self, seed):
        program = random_program(seed, f"random-{seed}")
        for config_factory in (baseline_config, extended_config, constrained_config):
            config = config_factory()
            reference, candidate = run_both(config, program, 2_500)
            assert_identical(reference, candidate, f"random-{seed}/{config.name}")

    @pytest.mark.parametrize("budget", [1, 17, 81, 82, 1000, 2_047])
    def test_partial_iteration_budgets(self, budget):
        """Budgets that end mid-iteration exercise the generic tail path."""
        config = baseline_config()
        program = random_program(99, "tail-program")
        reference, candidate = run_both(config, program, budget)
        assert_identical(reference, candidate, f"budget-{budget}")
        assert candidate.stats.committed_instructions == min(
            budget, len(program.body) * program.iterations
        )

    def test_dispatcher_uses_kernel_by_default(self, monkeypatch):
        monkeypatch.delenv(kernel.KERNEL_ENV_VAR, raising=False)
        kernel.clear_kernels()
        config = baseline_config()
        program = random_program(5, "dispatch-check")
        core = OutOfOrderCore(config, seed=3)
        core.run(program, max_instructions=500)
        assert kernel.STATS.compiled == 1
        core.run(program, max_instructions=500)
        assert kernel.STATS.memo_hits >= 1

    def test_repro_kernel_zero_forces_interpreter(self, monkeypatch):
        monkeypatch.setenv(kernel.KERNEL_ENV_VAR, "0")
        kernel.clear_kernels()
        config = baseline_config()
        program = random_program(6, "disabled-check")
        core = OutOfOrderCore(config, seed=3)
        disabled = core.run(program, max_instructions=500)
        assert kernel.STATS.compiled == 0 and kernel.STATS.generated == 0
        monkeypatch.delenv(kernel.KERNEL_ENV_VAR, raising=False)
        enabled = core.run(program, max_instructions=500)
        assert_identical(disabled, enabled, "env-switch")

    def test_explicit_setup_section_falls_back_to_interpreter(self):
        """functional_setup=False is out of kernel scope — results still match."""
        kernel.clear_kernels()
        config = baseline_config()
        program = random_program(7, "setup-check")
        program.setup = [make_alu(1, [0]), make_store(FixedPattern(address=64), srcs=[1])]
        core = OutOfOrderCore(config, seed=3)
        via_run = core.run(program, max_instructions=500, functional_setup=False)
        reference = core.run_interpreted(program, max_instructions=500, functional_setup=False)
        assert kernel.STATS.compiled == 0
        assert_identical(reference, via_run, "setup-fallback")


class TestBatchKernelDifferential:
    """Batch plane vs per-genome kernels vs the interpreted reference.

    Every program of a batch must be bit-identical under all three
    execution paths — the config batch kernel with shared warm state, the
    per-(program, config) specialized kernel, and the interpreted loop.
    """

    def _assert_three_way(self, config, programs, budget, label):
        core = OutOfOrderCore(config, seed=3)
        via_batch = kernel_batch.run_many(core, programs, budget)
        assert via_batch is not None, f"{label}: batch kernel generation failed"
        assert len(via_batch) == len(programs)
        for index, (program, candidate) in enumerate(zip(programs, via_batch)):
            reference = core.run_interpreted(program, max_instructions=budget)
            assert_identical(reference, candidate, f"{label}[{index}] batch-vs-interp")
            per_genome = SOURCE.run_one(core, program, budget)
            assert_identical(per_genome, candidate, f"{label}[{index}] batch-vs-source")

    @pytest.mark.parametrize(
        "config_factory", [baseline_config, config_a, extended_config, constrained_config]
    )
    def test_stressmark_population(self, config_factory):
        """A GA-generation-shaped batch of derived stressmarks, per config."""
        config = config_factory()
        generator = StressmarkGenerator(config=config, max_instructions=2_500)
        knobs = reference_knobs(config)
        programs = [
            generator.codegen.generate(knobs.derive(random_seed=seed))
            for seed in range(1, 5)
        ]
        self._assert_three_way(config, programs, 2_500, f"batch-stressmark/{config.name}")

    def test_mixed_program_lengths_in_one_batch(self):
        """One batch mixing random programs and stressmarks of varying size."""
        config = baseline_config()
        generator = StressmarkGenerator(config=config, max_instructions=2_000)
        programs = [
            random_program(41, "mixed-a"),
            generator.codegen.generate(reference_knobs(config)),
            random_program(43, "mixed-b"),
            generator.codegen.generate(reference_knobs(config).derive(random_seed=9)),
            random_program(47, "mixed-c"),
        ]
        assert len({len(program.body) for program in programs}) > 1
        self._assert_three_way(config, programs, 2_000, "batch-mixed-lengths")

    @pytest.mark.parametrize("budget", [1, 17, 81, 1_999, 2_001])
    def test_partial_final_iteration_budgets(self, budget):
        """Budgets ending mid-iteration exercise the batch kernel's tail."""
        config = baseline_config()
        programs = [random_program(97, "batch-tail-a"), random_program(99, "batch-tail-b")]
        self._assert_three_way(config, programs, budget, f"batch-budget-{budget}")

    def test_duplicate_programs_share_one_plan_entry(self):
        """The same digest appearing twice is planned once, simulated twice."""
        kernel_batch.clear_batch_caches()
        config = baseline_config()
        program = random_program(51, "batch-dup")
        self._assert_three_way(config, [program, program, program], 1_500, "batch-dup")
        assert kernel_batch.STATS.plans_built == 1

    def test_setup_program_skips_warm_sharing(self):
        """Explicit setup instructions force the unshared warm-up path."""
        kernel_batch.clear_batch_caches()
        config = baseline_config()
        with_setup = random_program(53, "batch-setup")
        with_setup.setup = [make_alu(1, [0]), make_store(FixedPattern(address=64), srcs=[1])]
        plain = random_program(54, "batch-plain")
        assert not kernel_batch.supports_warm_sharing(with_setup)
        assert kernel_batch.supports_warm_sharing(plain)
        self._assert_three_way(config, [with_setup, plain], 1_500, "batch-setup-mix")
        assert kernel_batch.STATS.warm_builds == 1  # only the plain program shares

    def test_warm_state_reused_across_batches(self):
        """A second batch with the same footprint rebuilds nothing."""
        kernel_batch.clear_batch_caches()
        config = baseline_config()
        generator = StressmarkGenerator(config=config, max_instructions=1_500)
        knobs = reference_knobs(config)
        first = [generator.codegen.generate(knobs.derive(random_seed=s)) for s in (1, 2)]
        second = [generator.codegen.generate(knobs.derive(random_seed=s)) for s in (3, 4)]
        core = OutOfOrderCore(config, seed=3)
        assert kernel_batch.run_many(core, first, 1_500) is not None
        builds_after_first = kernel_batch.STATS.warm_builds
        assert kernel_batch.run_many(core, second, 1_500) is not None
        assert kernel_batch.STATS.warm_hits > 0
        assert kernel_batch.STATS.warm_builds == builds_after_first

    def test_empty_body_program_runs_interpreted_inline(self):
        """The batch runner's empty-body guard routes to the interpreter."""
        config = baseline_config()
        empty = random_program(57, "batch-emptied")
        empty.body = []  # not constructible directly; emptied post-validation
        plain = random_program(58, "batch-nonempty")
        core = OutOfOrderCore(config, seed=3)
        results = kernel_batch.run_many(core, [empty, plain], 1_000)
        assert results is not None and len(results) == 2
        assert_identical(
            core.run_interpreted(empty, max_instructions=1_000),
            results[0],
            "batch-empty-body[0]",
        )
        assert_identical(
            core.run_interpreted(plain, max_instructions=1_000),
            results[1],
            "batch-empty-body[1]",
        )


class TestVectorKernelDifferential:
    """Vector plane vs batch plane vs per-genome kernels vs the interpreter.

    Every program of a batch must be bit-identical under all *four*
    execution paths; the vector path additionally asserts it actually
    engaged (``kernel_vector.STATS.vector_runs``) rather than silently
    falling back — a fallback-everything implementation would pass the
    equality checks while vectorizing nothing.
    """

    pytestmark = pytest.mark.skipif(
        not kernel_vector.numpy_available(), reason="numpy not installed"
    )

    def _assert_four_way(self, config, programs, budget, label, expect_vectorized=None):
        kernel_vector.STATS.reset()
        core = OutOfOrderCore(config, seed=3)
        via_vector = kernel_vector.run_many(core, programs, budget)
        assert via_vector is not None, f"{label}: vector kernel generation failed"
        assert len(via_vector) == len(programs)
        via_batch = kernel_batch.run_many(core, programs, budget)
        assert via_batch is not None, f"{label}: batch kernel generation failed"
        for index, (program, candidate) in enumerate(zip(programs, via_vector)):
            reference = core.run_interpreted(program, max_instructions=budget)
            assert_identical(reference, candidate, f"{label}[{index}] vector-vs-interp")
            assert_identical(via_batch[index], candidate, f"{label}[{index}] vector-vs-batch")
            per_genome = SOURCE.run_one(core, program, budget)
            assert_identical(per_genome, candidate, f"{label}[{index}] vector-vs-source")
        if expect_vectorized is None:
            expect_vectorized = len(programs)
        assert kernel_vector.STATS.vector_runs == expect_vectorized, (
            f"{label}: expected {expect_vectorized} vectorized runs, "
            f"got {kernel_vector.STATS.vector_runs} "
            f"(fallbacks: {kernel_vector.STATS.fallbacks})"
        )

    @pytest.mark.parametrize(
        "config_factory", [baseline_config, config_a, extended_config, constrained_config]
    )
    def test_stressmark_population(self, config_factory):
        """A GA-generation-shaped batch of derived stressmarks, per config."""
        config = config_factory()
        generator = StressmarkGenerator(config=config, max_instructions=2_500)
        knobs = reference_knobs(config)
        programs = [
            generator.codegen.generate(knobs.derive(random_seed=seed))
            for seed in range(1, 5)
        ]
        self._assert_four_way(config, programs, 2_500, f"vector-stressmark/{config.name}")

    def test_mixed_program_lengths_in_one_batch(self):
        """One batch mixing random programs and stressmarks of varying size."""
        config = baseline_config()
        generator = StressmarkGenerator(config=config, max_instructions=2_000)
        programs = [
            random_program(41, "vmixed-a"),
            generator.codegen.generate(reference_knobs(config)),
            random_program(43, "vmixed-b"),
            generator.codegen.generate(reference_knobs(config).derive(random_seed=9)),
            random_program(47, "vmixed-c"),
        ]
        assert len({len(program.body) for program in programs}) > 1
        self._assert_four_way(config, programs, 2_000, "vector-mixed-lengths")

    @pytest.mark.parametrize("budget", [1, 17, 81, 1_999, 2_001])
    def test_partial_final_iteration_budgets(self, budget):
        """Budgets ending mid-iteration exercise the vector kernel's tail."""
        config = baseline_config()
        programs = [random_program(97, "vtail-a"), random_program(99, "vtail-b")]
        self._assert_four_way(config, programs, budget, f"vector-budget-{budget}")

    def test_setup_program_falls_back_to_batch(self):
        """Explicit setup sections are out of vector scope; results still match."""
        config = baseline_config()
        with_setup = random_program(53, "vsetup")
        with_setup.setup = [make_alu(1, [0]), make_store(FixedPattern(address=64), srcs=[1])]
        plain = random_program(54, "vplain")
        assert not kernel_vector.supports_vector(with_setup)
        assert kernel_vector.supports_vector(plain)
        self._assert_four_way(
            config, [with_setup, plain], 1_500, "vector-setup-mix", expect_vectorized=1
        )
        assert kernel_vector.STATS.fallbacks == 1

    def test_empty_body_program_runs_interpreted_inline(self):
        """The vector runner's empty-body guard routes to the interpreter."""
        config = baseline_config()
        empty = random_program(57, "vemptied")
        empty.body = []
        plain = random_program(58, "vnonempty")
        core = OutOfOrderCore(config, seed=3)
        results = kernel_vector.run_many(core, [empty, plain], 1_000)
        assert results is not None and len(results) == 2
        for index, program in enumerate([empty, plain]):
            assert_identical(
                core.run_interpreted(program, max_instructions=1_000),
                results[index],
                f"vector-empty-body[{index}]",
            )

    def test_backend_run_many_routes_through_vector_plane(self):
        """The registered backend engages the vector plane for batches."""
        kernel_vector.STATS.reset()
        config = baseline_config()
        programs = [random_program(61, "vbackend-a"), random_program(62, "vbackend-b")]
        core = OutOfOrderCore(config, seed=3)
        backend = KERNEL_BACKENDS.create("vector")
        assert backend is VECTOR
        results = backend.run_many(core, programs, 1_000)
        assert kernel_vector.STATS.vector_runs == 2
        for index, program in enumerate(programs):
            assert_identical(
                core.run_interpreted(program, max_instructions=1_000),
                results[index],
                f"vector-backend[{index}]",
            )


class TestVectorWithoutNumpy:
    """The vector backend degrades loudly — never silently — without numpy."""

    def test_run_many_returns_none(self, monkeypatch):
        monkeypatch.setattr(kernel_vector, "_np", None)
        assert not kernel_vector.numpy_available()
        core = OutOfOrderCore(baseline_config(), seed=3)
        assert kernel_vector.run_many(core, [random_program(63, "nonumpy")], 500) is None

    def test_registry_create_raises_with_install_hint(self, monkeypatch):
        from repro.registry import RegistryError

        monkeypatch.setattr(kernel_vector, "_np", None)
        assert "vector" in KERNEL_BACKENDS.names()  # stays registered
        with pytest.raises(RegistryError, match=r"repro-avf-stressmark\[vector\]"):
            KERNEL_BACKENDS.create("vector")

    def test_spec_naming_vector_still_validates(self, monkeypatch):
        """Spec validation checks registration, not runtime availability."""
        from repro.api.spec import RunSpec

        monkeypatch.setattr(kernel_vector, "_np", None)
        spec = RunSpec(kind="stressmark", name="v", kernel_backend="vector")
        spec.validate()  # must not raise

    def test_backend_object_falls_back_to_batch_plane(self, monkeypatch):
        """The backend instance itself (already resolved) degrades to batch."""
        monkeypatch.setattr(kernel_vector, "_np", None)
        config = baseline_config()
        program = random_program(67, "nonumpy-fallback")
        core = OutOfOrderCore(config, seed=3)
        results = VECTOR.run_many(core, [program], 800)
        assert_identical(
            core.run_interpreted(program, max_instructions=800),
            results[0],
            "nonumpy-batch-fallback",
        )


class TestKernelCache:
    def test_source_store_round_trip(self, tmp_path):
        from repro.store.artifacts import ArtifactStore

        kernel.clear_kernels()
        config = baseline_config()
        program = random_program(11, "store-check")
        store = ArtifactStore(tmp_path / "kernels.sqlite")
        try:
            kernel.configure_source_store(store)
            first = kernel.kernel_for(config, program)
            assert first is not None and kernel.STATS.generated == 1
            key = kernel.source_key(kernel.program_digest(program), kernel.config_digest(config))
            assert isinstance(store.get(key), str)

            # A fresh process (simulated by clearing the in-process memo)
            # loads source from the store instead of regenerating.
            kernel.clear_kernels()
            second = kernel.kernel_for(config, program)
            assert second is not None
            assert kernel.STATS.generated == 0
            assert kernel.STATS.source_store_hits == 1
            core = OutOfOrderCore(config, seed=3)
            assert_identical(
                core.run_interpreted(program, max_instructions=400),
                second(core, program, 400),
                "store-kernel",
            )
        finally:
            kernel.configure_source_store(None)
            store.close()
            kernel.clear_kernels()

    def test_failure_remembered_not_retried(self, monkeypatch):
        kernel.clear_kernels()
        config = baseline_config()
        program = random_program(13, "failure-check")
        calls = {"n": 0}

        def boom(*args, **kwargs):
            calls["n"] += 1
            raise RuntimeError("codegen exploded")

        monkeypatch.setattr(kernel, "generate_kernel_source", boom)
        assert kernel.kernel_for(config, program) is None
        assert kernel.kernel_for(config, program) is None
        assert calls["n"] == 1 and kernel.STATS.failures == 1
        # The dispatcher degrades to the interpreter transparently.
        core = OutOfOrderCore(config, seed=3)
        result = core.run(program, max_instructions=300)
        assert result.stats.committed_instructions == 300
        kernel.clear_kernels()

    def test_closed_source_store_detaches_instead_of_failing(self, tmp_path):
        """A source store outliving its session must not poison generation.

        Regression test: sessions attach their result store's artifact
        database as the kernel source cache; after the session closes the
        sqlite handle, kernel generation must detach the dead store and
        keep compiling locally (not record a failure).
        """
        from repro.store.artifacts import ArtifactStore

        kernel.clear_kernels()
        store = ArtifactStore(tmp_path / "kernels.sqlite")
        kernel.configure_source_store(store)
        store.close()  # the owner went away without detaching

        config = baseline_config()
        program = random_program(19, "closed-store-check")
        assert kernel.kernel_for(config, program) is not None
        assert kernel.STATS.failures == 0
        kernel.clear_kernels()

    def test_context_detaches_kernel_store_on_close(self, tmp_path):
        from repro.experiments.runner import ExperimentContext, ExperimentScale
        from repro.store.result_store import open_store

        kernel.clear_kernels()
        store = open_store(tmp_path / "store")
        context = ExperimentContext(ExperimentScale.quick(), store=store)
        context.close()
        store.close()
        program = random_program(23, "context-close-check")
        assert kernel.kernel_for(baseline_config(), program) is not None
        assert kernel.STATS.failures == 0
        kernel.clear_kernels()

    def test_shared_store_survives_sibling_context_close(self, tmp_path):
        """Closing one of two contexts on a store must not detach the cache."""
        from repro.experiments.runner import ExperimentContext, ExperimentScale
        from repro.store.result_store import open_store

        kernel.clear_kernels()
        store = open_store(tmp_path / "store")
        try:
            first = ExperimentContext(ExperimentScale.quick(), store=store)
            second = ExperimentContext(ExperimentScale.quick(), store=store)
            first.close()
            assert kernel._active_source_store() is not None, (
                "source store detached while a sibling context still owns it"
            )
            second.close()
            assert kernel._active_source_store() is None
        finally:
            store.close()
            kernel.clear_kernels()

    def test_failed_store_pruned_from_attach_stack(self, tmp_path):
        """A store that raises is evicted everywhere; the survivor takes over."""
        from repro.store.artifacts import ArtifactStore

        kernel.clear_kernels()
        healthy = ArtifactStore(tmp_path / "healthy.sqlite")
        broken = ArtifactStore(tmp_path / "broken.sqlite")
        try:
            kernel.attach_source_store(healthy)
            kernel.attach_source_store(broken)
            broken.close()  # now every get/put on it raises
            program = random_program(37, "failed-store-check")
            assert kernel.kernel_for(baseline_config(), program) is not None
            assert kernel.STATS.failures == 0
            # The broken store was pruned and the healthy one restored —
            # persistence keeps working (source landed in the survivor).
            assert kernel._active_source_store() is healthy
            key = kernel.source_key(
                kernel.program_digest(program), kernel.config_digest(baseline_config())
            )
            assert isinstance(healthy.get(key), str)
        finally:
            kernel.release_source_store(healthy)
            kernel.release_source_store(broken)
            kernel.configure_source_store(None)
            healthy.close()
            kernel.clear_kernels()

    def test_memo_is_bounded(self, monkeypatch):
        kernel.clear_kernels()
        monkeypatch.setattr(kernel, "KERNEL_CACHE_LIMIT", 2)
        config = baseline_config()
        for seed in (31, 32, 33):
            assert kernel.kernel_for(config, random_program(seed, f"bound-{seed}")) is not None
        assert len(kernel._kernels) == 2
        kernel.clear_kernels()

    def test_memo_eviction_is_least_recently_used(self, monkeypatch):
        """A hit refreshes recency, so eviction drops the coldest entry."""
        kernel.clear_kernels()
        monkeypatch.setattr(kernel, "KERNEL_CACHE_LIMIT", 2)
        config = baseline_config()
        programs = {seed: random_program(seed, f"lru-{seed}") for seed in (71, 72, 73)}
        keys = {
            seed: (kernel.program_digest(program), kernel.config_digest(config))
            for seed, program in programs.items()
        }
        assert kernel.kernel_for(config, programs[71]) is not None
        assert kernel.kernel_for(config, programs[72]) is not None
        assert kernel.kernel_for(config, programs[71]) is not None  # refresh 71
        assert kernel.kernel_for(config, programs[73]) is not None  # evicts 72
        assert keys[71] in kernel._kernels and keys[73] in kernel._kernels
        assert keys[72] not in kernel._kernels
        kernel.clear_kernels()

    def test_memo_eviction_does_not_break_reuse(self, monkeypatch):
        """Evicted warm/plan entries regenerate transparently, bit-identically.

        Warm states and operand plans are LRU-bounded; with the bounds
        pinched to one entry, alternating between two footprints evicts the
        other's state every batch — results must stay identical anyway.
        """
        kernel.clear_kernels()
        monkeypatch.setattr(kernel_batch, "WARM_CACHE_LIMIT", 1)
        monkeypatch.setattr(kernel_batch, "PLAN_CACHE_LIMIT", 1)
        config = baseline_config()
        first = random_program(74, "evict-a")
        second = random_program(75, "evict-b")
        second.warmup_regions = [WarmupRegion(base=8192, size_bytes=1 << 14, dirty=False)]
        assert kernel_batch.warm_signature(first) != kernel_batch.warm_signature(second)
        core = OutOfOrderCore(config, seed=3)
        expected = {
            program.name: core.run_interpreted(program, max_instructions=800)
            for program in (first, second)
        }
        for round_index in range(2):
            for program in (first, second):  # each batch evicts the other's state
                results = kernel_batch.run_many(core, [program], 800)
                assert results is not None
                assert_identical(
                    expected[program.name], results[0],
                    f"evict-round-{round_index}/{program.name}",
                )
        assert len(kernel_batch._warm_states) == 1
        assert len(kernel_batch._plans) == 1
        assert kernel_batch.STATS.warm_builds >= 4  # rebuilt after each eviction
        kernel.clear_kernels()

    @pytest.mark.skipif(not kernel_vector.numpy_available(), reason="numpy not installed")
    def test_vector_frozen_warm_eviction_does_not_break_reuse(self, monkeypatch):
        """Same pinch for the vector plane's frozen-warm LRU."""
        kernel.clear_kernels()
        monkeypatch.setattr(kernel_vector, "VECTOR_WARM_CACHE_LIMIT", 1)
        config = baseline_config()
        first = random_program(76, "vevict-a")
        second = random_program(77, "vevict-b")
        second.warmup_regions = [WarmupRegion(base=8192, size_bytes=1 << 14, dirty=False)]
        core = OutOfOrderCore(config, seed=3)
        for round_index in range(2):
            for program in (first, second):
                results = kernel_vector.run_many(core, [program], 800)
                assert results is not None
                assert_identical(
                    core.run_interpreted(program, max_instructions=800),
                    results[0],
                    f"vevict-round-{round_index}/{program.name}",
                )
        assert len(kernel_vector._frozen_warm) == 1
        kernel.clear_kernels()

    @pytest.mark.skipif(not kernel_vector.numpy_available(), reason="numpy not installed")
    def test_vector_source_store_round_trip(self, tmp_path):
        """Vector kernel source persists under its own store namespace."""
        from repro.store.artifacts import ArtifactStore

        kernel.clear_kernels()
        config = baseline_config()
        store = ArtifactStore(tmp_path / "kernels.sqlite")
        try:
            kernel.configure_source_store(store)
            first = kernel.vector_kernel_for(config)
            assert first is not None and kernel.STATS.generated == 1
            cfg_digest = kernel.config_digest(config)
            assert isinstance(store.get(kernel.vector_source_key(cfg_digest)), str)
            kernel.clear_kernels()
            second = kernel.vector_kernel_for(config)
            assert second is not None
            assert kernel.STATS.generated == 0
            assert kernel.STATS.source_store_hits == 1
        finally:
            kernel.configure_source_store(None)
            store.close()
            kernel.clear_kernels()

    def test_corrupt_stored_source_falls_back_to_local_generation(self, tmp_path):
        from repro.store.artifacts import ArtifactStore

        kernel.clear_kernels()
        config = baseline_config()
        program = random_program(29, "corrupt-source-check")
        store = ArtifactStore(tmp_path / "kernels.sqlite")
        try:
            key = kernel.source_key(kernel.program_digest(program), kernel.config_digest(config))
            store.put(key, "def kernel_run(:  # truncated garbage")
            kernel.configure_source_store(store)
            kernel_run = kernel.kernel_for(config, program)
            assert kernel_run is not None, "corrupt stored source must not disable the kernel"
            assert kernel.STATS.failures == 0
            assert kernel.STATS.generated == 1
            # The repaired source overwrites the corrupt entry.
            assert "truncated garbage" not in store.get(key)
        finally:
            kernel.configure_source_store(None)
            store.close()
            kernel.clear_kernels()

    def test_source_store_reopened_after_fork(self, tmp_path):
        """A child process must not reuse the parent's sqlite connection."""
        from repro.store.artifacts import ArtifactStore

        kernel.clear_kernels()
        store = ArtifactStore(tmp_path / "kernels.sqlite")
        try:
            kernel.configure_source_store(store)
            # Simulate being on the other side of a fork().
            kernel._source_store_pid = -1
            reopened = kernel._active_source_store()
            assert reopened is not None and reopened is not store
            assert reopened.path == store.path
            reopened.close()
        finally:
            kernel.configure_source_store(None)
            store.close()
            kernel.clear_kernels()

    def test_distinct_configs_get_distinct_kernels(self):
        kernel.clear_kernels()
        program = random_program(17, "digest-check")
        assert kernel.config_digest(baseline_config()) != kernel.config_digest(extended_config())
        assert kernel.kernel_for(baseline_config(), program) is not kernel.kernel_for(
            extended_config(), program
        )
        assert kernel.STATS.compiled == 2
        kernel.clear_kernels()
