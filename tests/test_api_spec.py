"""Tests for RunSpec / RunResult serialization, validation and sweeps."""

from __future__ import annotations

import json

import pytest

from repro.api.spec import RUN_KINDS, RunResult, RunSpec, SpecError


def tiny_stressmark_spec(**overrides) -> RunSpec:
    kwargs = dict(
        kind="stressmark",
        name="tiny",
        scale_overrides={"stressmark_instructions": 2_000, "ga_population": 4, "ga_generations": 2},
    )
    kwargs.update(overrides)
    return RunSpec(**kwargs)


class TestRunSpecRoundTrip:
    def test_json_round_trip_preserves_digest(self):
        spec = tiny_stressmark_spec(fault_rates="rhc", seed=11)
        reloaded = RunSpec.from_json(spec.to_json())
        assert reloaded == spec
        assert reloaded.digest == spec.digest

    def test_sparse_dict_fills_defaults(self):
        spec = RunSpec.from_json_dict({"kind": "simulate"})
        assert spec.config == "baseline"
        assert spec.fault_rates == "unit"
        assert spec.scale == "quick"
        assert spec.suites == ()

    def test_sparse_and_full_forms_share_a_digest(self):
        sparse = RunSpec.from_json_dict({"kind": "simulate", "suites": ["mibench"]})
        full = RunSpec(kind="simulate", suites=("mibench",))
        assert sparse.digest == full.digest

    def test_digest_changes_with_content(self):
        assert tiny_stressmark_spec().digest != tiny_stressmark_spec(fault_rates="rhc").digest

    def test_file_round_trip(self, tmp_path):
        spec = tiny_stressmark_spec()
        path = tmp_path / "spec.json"
        spec.save(path)
        assert RunSpec.load(path).digest == spec.digest

    def test_sweep_round_trip(self):
        sweep = RunSpec(
            kind="sweep",
            name="s",
            base=tiny_stressmark_spec(),
            axes={"fault_rates": ("unit", "rhc")},
            runs=(RunSpec(kind="simulate", suites=("mibench",)),),
        )
        reloaded = RunSpec.from_json(sweep.to_json())
        assert reloaded == sweep
        assert reloaded.digest == sweep.digest


class TestRunSpecValidation:
    def test_unknown_kind(self):
        with pytest.raises(SpecError, match="unknown run kind"):
            RunSpec(kind="simulat").validate()

    def test_kind_suggestion(self):
        with pytest.raises(SpecError, match="did you mean 'simulate'"):
            RunSpec(kind="simulat").validate()
        assert "simulate" in RUN_KINDS

    def test_unknown_component_name_propagates_registry_error(self):
        with pytest.raises(KeyError, match="did you mean 'rhc'"):
            RunSpec(kind="stressmark", fault_rates="rch").validate()

    def test_unknown_spec_field_suggestion(self):
        with pytest.raises(SpecError, match="unknown spec field 'fault_rate'"):
            RunSpec.from_json_dict({"kind": "simulate", "fault_rate": "rhc"})

    def test_unknown_config_override_field(self):
        with pytest.raises(SpecError, match="unknown config_overrides field 'rob_entrys'"):
            RunSpec(kind="simulate", config_overrides={"rob_entrys": 99}).validate()

    def test_unknown_scale_override_field(self):
        with pytest.raises(SpecError, match="unknown scale_overrides field"):
            RunSpec(kind="simulate", scale_overrides={"ga_pop": 4}).validate()

    def test_missing_kind(self):
        with pytest.raises(SpecError, match="needs a 'kind'"):
            RunSpec.from_json_dict({"config": "baseline"})

    def test_bad_jobs(self):
        with pytest.raises(SpecError, match="jobs"):
            RunSpec(kind="simulate", jobs=0).validate()

    def test_sweep_fields_rejected_on_leaf_kinds(self):
        with pytest.raises(SpecError, match="only valid for kind='sweep'"):
            RunSpec(kind="simulate", axes={"fault_rates": ("unit",)},
                    base=RunSpec(kind="simulate")).validate()


class TestSweeps:
    def test_axes_product_expansion_order(self):
        sweep = RunSpec(
            kind="sweep",
            name="grid",
            base=RunSpec(kind="stressmark", name="sm"),
            axes={"config": ("baseline", "config_a"), "fault_rates": ("unit", "rhc")},
        )
        children = sweep.expand()
        assert [(c.config, c.fault_rates) for c in children] == [
            ("baseline", "unit"), ("baseline", "rhc"),
            ("config_a", "unit"), ("config_a", "rhc"),
        ]
        assert children[0].name == "sm[config=baseline,fault_rates=unit]"

    def test_explicit_runs_follow_axes_children(self):
        extra = RunSpec(kind="simulate", name="extra", suites=("mibench",))
        sweep = RunSpec(
            kind="sweep",
            base=RunSpec(kind="stressmark"),
            axes={"fault_rates": ("unit",)},
            runs=(extra,),
        )
        children = sweep.expand()
        assert len(children) == 2
        assert children[-1] == extra

    def test_sweep_without_axes_or_runs(self):
        with pytest.raises(SpecError, match="needs 'axes'"):
            RunSpec(kind="sweep").validate()

    def test_axes_without_base(self):
        with pytest.raises(SpecError, match="needs a 'base'"):
            RunSpec(kind="sweep", axes={"fault_rates": ("unit",)}).validate()

    def test_unsweepable_axis(self):
        with pytest.raises(SpecError, match="cannot sweep over field 'jobs'"):
            RunSpec(kind="sweep", base=RunSpec(kind="stressmark"),
                    axes={"jobs": (1, 2)}).validate()

    def test_nested_sweep_rejected(self):
        with pytest.raises(SpecError, match="cannot nest"):
            RunSpec(kind="sweep", runs=(RunSpec(kind="sweep", runs=(RunSpec(kind="simulate"),)),)).validate()

    def test_leaf_expand_returns_itself(self):
        spec = RunSpec(kind="simulate")
        assert spec.expand() == [spec]

    def test_sweep_level_component_fields_rejected(self):
        """Leaf fields on a sweep would be silently ignored — fail loudly."""
        with pytest.raises(SpecError, match="'fault_rates' is ignored on a sweep"):
            RunSpec(kind="sweep", fault_rates="rhc",
                    runs=(RunSpec(kind="stressmark"),)).validate()
        with pytest.raises(SpecError, match="'scale_overrides' is ignored on a sweep"):
            RunSpec(kind="sweep", scale_overrides={"ga_population": 4},
                    runs=(RunSpec(kind="stressmark"),)).validate()

    def test_sweep_jobs_and_backend_inherited_by_children(self):
        sweep = RunSpec(
            kind="sweep",
            jobs=3,
            backend="serial",
            base=RunSpec(kind="stressmark"),
            axes={"fault_rates": ("unit",)},
            runs=(RunSpec(kind="simulate", jobs=2, backend="process"),),
        )
        axis_child, explicit_child = sweep.expand()
        assert axis_child.jobs == 3 and axis_child.backend == "serial"
        # Children with their own settings keep them.
        assert explicit_child.jobs == 2 and explicit_child.backend == "process"


class TestRunResult:
    def test_round_trip(self):
        spec = tiny_stressmark_spec()
        result = RunResult(
            spec=spec,
            rows=[{"program": "x", "ipc": 1.5}],
            knobs={"Loop Size": 81},
            ser={"qs": 0.5},
            ga={"evaluations": 8},
            timing={"seconds": 0.1},
            provenance={"spec_digest": spec.digest, "repro_version": "1.1.0"},
        )
        reloaded = RunResult.from_json(result.to_json())
        assert reloaded.spec == spec
        assert reloaded.rows == result.rows
        assert reloaded.knobs == result.knobs
        assert reloaded.spec_digest == spec.digest

    def test_round_trip_with_children(self, tmp_path):
        child_spec = RunSpec(kind="simulate", suites=("mibench",))
        sweep_spec = RunSpec(kind="sweep", runs=(child_spec,))
        child = RunResult(spec=child_spec, rows=[{"program": "y"}])
        result = RunResult(spec=sweep_spec, rows=[{"program": "y"}], children=[child])
        path = tmp_path / "result.json"
        result.save(path)
        reloaded = RunResult.load(path)
        assert len(reloaded.children) == 1
        assert reloaded.children[0].spec == child_spec

    def test_json_output_is_plain_data(self):
        result = RunResult(spec=RunSpec(kind="simulate"), rows=[{"a": 1.0}])
        json.loads(result.to_json())  # must not raise
