"""Tests for GA operators: selection, crossover, mutation, migration, cataclysm."""

from __future__ import annotations

import pytest

from repro.ga.genes import FloatGene, GeneSpace, IntGene
from repro.ga.individual import Individual, best_of, population_diversity
from repro.ga.operators import cataclysm, crossover, migrate, mutate, tournament_selection
from repro.utils.rng import DeterministicRng


SPACE = GeneSpace([IntGene("x", 0, 100), FloatGene("y", 0.0, 1.0)])


def make_population(fitnesses):
    return [
        Individual(genome={"x": index * 10, "y": 0.1 * index}, fitness=fitness)
        for index, fitness in enumerate(fitnesses)
    ]


class TestIndividual:
    def test_evaluated_flag(self):
        assert not Individual(genome={"x": 1}).evaluated
        assert Individual(genome={"x": 1}, fitness=0.5).evaluated

    def test_copy_is_independent(self):
        individual = Individual(genome={"x": 1}, fitness=0.5)
        clone = individual.copy()
        clone.genome["x"] = 2
        assert individual.genome["x"] == 1

    def test_signature_stable(self):
        a = Individual(genome={"x": 1, "y": 2})
        b = Individual(genome={"y": 2, "x": 1})
        assert a.genome_signature() == b.genome_signature()

    def test_best_of(self):
        population = make_population([0.1, 0.9, 0.5])
        assert best_of(population).fitness == 0.9

    def test_best_of_requires_evaluated(self):
        with pytest.raises(ValueError):
            best_of([Individual(genome={"x": 1})])

    def test_population_diversity(self):
        identical = [Individual(genome={"x": 1}) for _ in range(4)]
        assert population_diversity(identical) == pytest.approx(0.25)
        distinct = [Individual(genome={"x": index}) for index in range(4)]
        assert population_diversity(distinct) == pytest.approx(1.0)
        assert population_diversity([]) == 0.0


class TestTournamentSelection:
    def test_prefers_fitter_individuals(self):
        rng = DeterministicRng(1)
        population = make_population([0.0, 1.0])
        wins = sum(
            tournament_selection(population, rng, tournament_size=2).fitness == 1.0
            for _ in range(200)
        )
        assert wins > 140

    def test_empty_population_rejected(self):
        with pytest.raises(ValueError):
            tournament_selection([], DeterministicRng(0))

    def test_all_none_fitness_population(self):
        """Selection over a fully unevaluated population picks a member
        instead of crashing (every contender ranks at -inf)."""
        population = [Individual(genome={"x": index, "y": 0.0}) for index in range(5)]
        selected = tournament_selection(population, DeterministicRng(6), tournament_size=3)
        assert selected in population
        assert selected.fitness is None

    def test_mixed_none_fitness_prefers_evaluated(self):
        population = [
            Individual(genome={"x": 0, "y": 0.0}),
            Individual(genome={"x": 1, "y": 0.1}, fitness=0.5),
        ]
        rng = DeterministicRng(7)
        for _ in range(50):
            selected = tournament_selection(population, rng, tournament_size=2)
            assert selected.fitness is None or selected.fitness == 0.5


class TestCrossover:
    def test_child_genes_within_parent_values(self):
        rng = DeterministicRng(2)
        left = Individual(genome={"x": 10, "y": 0.2}, fitness=1.0)
        right = Individual(genome={"x": 90, "y": 0.8}, fitness=2.0)
        for _ in range(50):
            child = crossover(SPACE, left, right, rng)
            assert 10 <= child.genome["x"] <= 90
            assert 0.2 <= child.genome["y"] <= 0.8
            assert child.fitness is None


class TestMutation:
    def test_zero_rate_is_identity(self):
        individual = Individual(genome={"x": 50, "y": 0.5})
        mutated = mutate(SPACE, individual, DeterministicRng(3), mutation_rate=0.0)
        assert mutated.genome == individual.genome

    def test_full_rate_changes_genes_within_bounds(self):
        individual = Individual(genome={"x": 50, "y": 0.5})
        mutated = mutate(SPACE, individual, DeterministicRng(3), mutation_rate=1.0)
        assert 0 <= mutated.genome["x"] <= 100
        assert 0.0 <= mutated.genome["y"] <= 1.0

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            mutate(SPACE, Individual(genome={"x": 1, "y": 0.1}), DeterministicRng(0), 1.5)


class TestMigration:
    def test_replaces_weakest(self):
        rng = DeterministicRng(4)
        population = make_population([0.9, 0.1, 0.5, 0.7])
        migrated = migrate(SPACE, population, rng, count=1)
        fitnesses = [ind.fitness for ind in migrated]
        assert 0.1 not in fitnesses
        assert len(migrated) == 4

    def test_zero_count_noop(self):
        population = make_population([0.1, 0.2])
        assert migrate(SPACE, population, DeterministicRng(0), count=0) is population

    def test_count_equal_to_population_replaces_everyone(self):
        population = make_population([0.9, 0.1, 0.5])
        migrated = migrate(SPACE, population, DeterministicRng(8), count=3)
        assert len(migrated) == 3
        assert all(ind.fitness is None for ind in migrated)

    def test_count_exceeding_population_preserves_size(self):
        """count >= len(population) must not shrink or grow the population."""
        population = make_population([0.9, 0.1])
        migrated = migrate(SPACE, population, DeterministicRng(9), count=10)
        assert len(migrated) == 2
        assert all(ind.fitness is None for ind in migrated)
        for immigrant in migrated:
            SPACE.validate(immigrant.genome)


class TestCataclysm:
    def test_keeps_best_and_restores_diversity(self):
        rng = DeterministicRng(5)
        best = Individual(genome={"x": 42, "y": 0.42}, fitness=0.99)
        population = [best] + [best.copy() for _ in range(9)]
        reseeded = cataclysm(SPACE, population, rng, mutation_rate=0.05)
        assert len(reseeded) == 10
        assert any(ind.genome == best.genome and ind.fitness == 0.99 for ind in reseeded)
        assert population_diversity(reseeded) > 0.5

    def test_empty_population(self):
        assert cataclysm(SPACE, [], DeterministicRng(0), 0.05) == []

    def test_all_none_fitness_population(self):
        """A cataclysm before any evaluation still reseeds around a member."""
        population = [Individual(genome={"x": index, "y": 0.1}) for index in range(6)]
        reseeded = cataclysm(SPACE, population, DeterministicRng(10), mutation_rate=0.05)
        assert len(reseeded) == 6
        survivor_genomes = [ind.genome for ind in population]
        assert reseeded[0].genome in survivor_genomes

    def test_forced_gene_change_path(self):
        """With a zero mutation rate every heavy-mutated copy would equal the
        best individual; the forced-change path must still alter at least one
        gene so the population regains diversity."""
        best = Individual(genome={"x": 42, "y": 0.42}, fitness=0.99)
        population = [best] + [best.copy() for _ in range(7)]
        reseeded = cataclysm(SPACE, population, DeterministicRng(11), mutation_rate=0.0)
        assert len(reseeded) == 8
        assert reseeded[0].genome == best.genome
        for candidate in reseeded[1:]:
            assert candidate.genome != best.genome
        assert population_diversity(reseeded) > 0.5
