"""Tests for the synthetic SPEC CPU2006 / MiBench workload proxies."""

from __future__ import annotations

import pytest

from repro.isa.instructions import InstructionClass
from repro.uarch.config import baseline_config
from repro.uarch.pipeline import OutOfOrderCore
from repro.uarch.structures import StructureName
from repro.workloads.profiles import WorkloadProfile, WorkloadSuite
from repro.workloads.suite import (
    all_profiles,
    mibench_profiles,
    profile_by_name,
    spec_fp_profiles,
    spec_int_profiles,
)
from repro.workloads.synthetic import build_workload


class TestSuiteComposition:
    def test_counts_match_paper(self):
        assert len(spec_int_profiles()) == 11
        assert len(spec_fp_profiles()) == 10
        assert len(mibench_profiles()) == 12
        assert len(all_profiles()) == 33

    def test_names_unique(self):
        names = [profile.name for profile in all_profiles()]
        assert len(names) == len(set(names))

    def test_suite_tags(self):
        assert all(p.suite is WorkloadSuite.SPEC_INT for p in spec_int_profiles())
        assert all(p.suite is WorkloadSuite.SPEC_FP for p in spec_fp_profiles())
        assert all(p.suite is WorkloadSuite.MIBENCH for p in mibench_profiles())

    def test_proxy_naming_convention(self):
        assert all(profile.name.endswith("_proxy") for profile in all_profiles())

    def test_profile_by_name(self):
        assert profile_by_name("403.gcc_proxy").suite is WorkloadSuite.SPEC_INT
        with pytest.raises(KeyError):
            profile_by_name("nonexistent")

    def test_fp_has_higher_ilp_character_than_mibench(self):
        fp_chain = sum(p.chain_length for p in spec_fp_profiles()) / 10
        mibench_chain = sum(p.chain_length for p in mibench_profiles()) / 12
        assert fp_chain > mibench_chain

    def test_fp_branch_fraction_lower_than_int(self):
        fp_branches = sum(p.branch_fraction for p in spec_fp_profiles()) / 10
        int_branches = sum(p.branch_fraction for p in spec_int_profiles()) / 11
        assert fp_branches < int_branches

    def test_mibench_working_sets_small(self):
        assert all(p.working_set_bytes <= 512 * 1024 for p in mibench_profiles())

    def test_spec_working_sets_larger(self):
        spec = spec_int_profiles() + spec_fp_profiles()
        assert all(p.working_set_bytes >= 256 * 1024 for p in spec)


class TestProfileValidation:
    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            WorkloadProfile(
                name="bad", suite=WorkloadSuite.MIBENCH,
                load_fraction=1.5, store_fraction=0.1, branch_fraction=0.1,
                long_latency_fraction=0.1, chain_length=2.0, dependency_distance=2,
                working_set_bytes=1024, streaming_fraction=0.0, random_access_fraction=0.0,
                branch_predictability=0.9, branch_taken_probability=0.5,
                dead_fraction=0.1, nop_fraction=0.0, prefetch_fraction=0.0,
                narrow_width_fraction=0.5, frontend_miss_rate=0.0,
            )

    def test_mix_must_leave_arithmetic(self):
        with pytest.raises(ValueError):
            WorkloadProfile(
                name="bad", suite=WorkloadSuite.MIBENCH,
                load_fraction=0.5, store_fraction=0.4, branch_fraction=0.2,
                long_latency_fraction=0.1, chain_length=2.0, dependency_distance=2,
                working_set_bytes=1024, streaming_fraction=0.0, random_access_fraction=0.0,
                branch_predictability=0.9, branch_taken_probability=0.5,
                dead_fraction=0.1, nop_fraction=0.0, prefetch_fraction=0.0,
                narrow_width_fraction=0.5, frontend_miss_rate=0.0,
            )

    def test_ace_fraction_accounts_for_unace_components(self):
        profile = profile_by_name("403.gcc_proxy")
        assert profile.ace_instruction_fraction == pytest.approx(
            1.0 - profile.dead_fraction - profile.nop_fraction - profile.prefetch_fraction
        )

    def test_arithmetic_fraction_complement(self):
        for profile in all_profiles():
            assert 0.0 < profile.arithmetic_fraction < 1.0


class TestBuildWorkload:
    @pytest.fixture(scope="class")
    def gcc_program(self):
        return build_workload(profile_by_name("403.gcc_proxy"), baseline_config(), seed=11)

    def test_deterministic(self):
        config = baseline_config()
        profile = profile_by_name("qsort_proxy")
        a = build_workload(profile, config, seed=5)
        b = build_workload(profile, config, seed=5)
        assert [repr(i) for i in a.body] == [repr(i) for i in b.body]

    def test_seed_changes_program(self):
        config = baseline_config()
        profile = profile_by_name("qsort_proxy")
        a = build_workload(profile, config, seed=5)
        b = build_workload(profile, config, seed=6)
        assert [repr(i) for i in a.body] != [repr(i) for i in b.body]

    def test_body_size_close_to_profile(self, gcc_program):
        profile = profile_by_name("403.gcc_proxy")
        assert abs(gcc_program.body_size - profile.body_size) <= profile.body_size * 0.1

    def test_mix_tracks_profile(self, gcc_program):
        profile = profile_by_name("403.gcc_proxy")
        mix = gcc_program.instruction_mix()
        assert mix.get("load", 0.0) == pytest.approx(profile.load_fraction, abs=0.05)
        assert mix.get("store", 0.0) == pytest.approx(profile.store_fraction, abs=0.05)
        assert mix.get("branch", 0.0) == pytest.approx(profile.branch_fraction, abs=0.05)

    def test_unace_content_present(self, gcc_program):
        profile = profile_by_name("403.gcc_proxy")
        assert gcc_program.ace_instruction_fraction() < 1.0
        assert gcc_program.ace_instruction_fraction() == pytest.approx(
            profile.ace_instruction_fraction, abs=0.12
        )

    def test_loop_branch_present(self, gcc_program):
        assert gcc_program.body[-1].opclass is InstructionClass.BRANCH

    def test_warmup_region_matches_working_set(self, gcc_program):
        profile = profile_by_name("403.gcc_proxy")
        assert gcc_program.warmup_regions[0].size_bytes == profile.working_set_bytes
        assert not gcc_program.warmup_regions[0].recurrent

    def test_metadata(self, gcc_program):
        assert gcc_program.metadata["suite"] == "spec_int"
        assert gcc_program.metadata["frontend_miss_rate"] > 0.0

    def test_every_profile_builds(self):
        config = baseline_config()
        for profile in all_profiles():
            program = build_workload(profile, config, seed=1)
            assert program.body_size >= 16


class TestWorkloadBehaviour:
    def test_mibench_runs_faster_than_streaming_fp(self):
        """Small-footprint kernels should have much higher IPC than streaming FP."""
        config = baseline_config()
        core = OutOfOrderCore(config, seed=3)
        mibench = core.run(build_workload(profile_by_name("blowfish_proxy"), config, seed=11),
                           max_instructions=2_500)
        fp = core.run(build_workload(profile_by_name("433.milc_proxy"), config, seed=11),
                      max_instructions=2_500)
        assert mibench.stats.ipc > fp.stats.ipc

    def test_branchy_workload_mispredicts_more(self):
        config = baseline_config()
        core = OutOfOrderCore(config, seed=3)
        branchy = core.run(build_workload(profile_by_name("qsort_proxy"), config, seed=11),
                           max_instructions=2_500)
        regular = core.run(build_workload(profile_by_name("sha_proxy"), config, seed=11),
                           max_instructions=2_500)
        assert branchy.stats.branch_misprediction_rate > regular.stats.branch_misprediction_rate

    def test_streaming_workload_misses_l2(self):
        config = baseline_config()
        core = OutOfOrderCore(config, seed=3)
        result = core.run(build_workload(profile_by_name("433.milc_proxy"), config, seed=11),
                          max_instructions=2_500)
        assert result.stats.l2_misses > 0

    def test_workload_avf_below_stressmark_levels(self):
        """No workload proxy should approach the stressmark's ROB AVF."""
        config = baseline_config()
        core = OutOfOrderCore(config, seed=3)
        result = core.run(build_workload(profile_by_name("447.dealII_proxy"), config, seed=11),
                          max_instructions=2_500)
        assert result.avf(StructureName.ROB) < 0.8
