"""Tests for machine configurations (Tables I and II)."""

from __future__ import annotations

import pytest

from repro.uarch.config import MachineConfig, baseline_config, config_a


class TestBaselineTable1:
    """Field-by-field check against Table I of the paper."""

    def test_widths(self, baseline):
        assert baseline.fetch_width == 4
        assert baseline.dispatch_width == 4
        assert baseline.issue_width == 4
        assert baseline.commit_width == 4

    def test_functional_units(self, baseline):
        assert baseline.int_alus == 4
        assert baseline.int_multipliers == 1
        assert baseline.alu_latency == 1
        assert baseline.multiply_latency == 7

    def test_queues(self, baseline):
        assert baseline.iq_entries == 20
        assert baseline.iq_bits_per_entry == 32
        assert baseline.rob_entries == 80
        assert baseline.rob_bits_per_entry == 76
        assert baseline.lq_entries == 32
        assert baseline.sq_entries == 32
        assert baseline.lsq_bits_per_entry == 128

    def test_register_file(self, baseline):
        assert baseline.rename_registers == 80
        assert baseline.register_bits == 64
        assert baseline.architected_registers == 32
        assert baseline.free_rename_registers == 48

    def test_branch_misprediction_penalty(self, baseline):
        assert baseline.branch_misprediction_penalty == 7

    def test_dl1(self, baseline):
        assert baseline.dl1.size_bytes == 64 * 1024
        assert baseline.dl1.associativity == 2
        assert baseline.dl1.line_bytes == 64
        assert baseline.dl1.hit_latency == 3

    def test_il1(self, baseline):
        assert baseline.il1.size_bytes == 64 * 1024
        assert baseline.il1.hit_latency == 1

    def test_dtlb(self, baseline):
        assert baseline.dtlb.entries == 256
        assert baseline.dtlb.page_bytes == 8 * 1024
        assert baseline.dtlb.reach_bytes == 2 * 1024 * 1024

    def test_l2(self, baseline):
        assert baseline.l2.size_bytes == 1024 * 1024
        assert baseline.l2.associativity == 1
        assert baseline.l2.hit_latency == 7

    def test_memory_issue_width(self, baseline):
        assert baseline.memory_issue_width == 2

    def test_functional_unit_count(self, baseline):
        assert baseline.functional_units == 5


class TestConfigATable2:
    """Field-by-field check against Table II of the paper."""

    def test_core_structures(self, alternate):
        assert alternate.iq_entries == 32
        assert alternate.rob_entries == 96
        assert alternate.rename_registers == 96
        assert alternate.int_multipliers == 4

    def test_memory_hierarchy(self, alternate):
        assert alternate.dl1.associativity == 4
        assert alternate.dtlb.entries == 512
        assert alternate.l2.size_bytes == 2 * 1024 * 1024
        assert alternate.l2.associativity == 8
        assert alternate.l2.hit_latency == 12

    def test_unchanged_fields(self, alternate, baseline):
        assert alternate.lq_entries == baseline.lq_entries
        assert alternate.issue_width == baseline.issue_width
        assert alternate.branch_misprediction_penalty == baseline.branch_misprediction_penalty


class TestDeriveAndValidation:
    def test_derive_overrides(self, baseline):
        derived = baseline.derive(rob_entries=128, name="bigger")
        assert derived.rob_entries == 128
        assert derived.name == "bigger"
        assert baseline.rob_entries == 80

    def test_lsq_bit_split(self, baseline):
        assert baseline.lsq_tag_bits + baseline.lsq_data_bits == baseline.lsq_bits_per_entry

    def test_rename_smaller_than_architected_rejected(self):
        with pytest.raises(ValueError):
            MachineConfig(rename_registers=16)

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            MachineConfig(issue_width=0)

    def test_zero_queue_rejected(self):
        with pytest.raises(ValueError):
            MachineConfig(iq_entries=0)
