"""Wire-protocol unit tests: framing, limits, endpoint parsing — plus a
fuzz suite driving a *live* server with malformed byte streams (truncated
length prefixes, oversize lengths, non-UTF8 bodies, interleaved garbage) to
prove every case is answered or dropped cleanly without killing a handler
thread."""

from __future__ import annotations

import socket
import struct
import threading

import pytest

from repro.serve.protocol import (
    ERROR_CODES,
    MAX_FRAME_BYTES,
    ProtocolError,
    error_response,
    parse_endpoint,
    parse_endpoints,
    recv_frame,
    send_frame,
)


@pytest.fixture()
def pair():
    left, right = socket.socketpair()
    yield left, right
    left.close()
    right.close()


def test_frame_round_trip(pair):
    left, right = pair
    payload = {"verb": "submit", "spec": {"kind": "simulate"}, "n": 3, "pi": 3.25}
    send_frame(left, payload)
    assert recv_frame(right) == payload


def test_multiple_frames_in_sequence(pair):
    left, right = pair
    for index in range(5):
        send_frame(left, {"index": index})
    for index in range(5):
        assert recv_frame(right) == {"index": index}


def test_unicode_survives_the_wire(pair):
    left, right = pair
    payload = {"name": "naïve-stressmark-μarch"}
    send_frame(left, payload)
    assert recv_frame(right) == payload


def test_clean_eof_returns_none(pair):
    left, right = pair
    left.close()
    assert recv_frame(right) is None


def test_eof_mid_frame_raises(pair):
    left, right = pair
    left.sendall(struct.pack(">I", 100) + b"short")
    left.close()
    with pytest.raises(ProtocolError, match="mid-frame"):
        recv_frame(right)


def test_oversized_header_refused(pair):
    left, right = pair
    left.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
    with pytest.raises(ProtocolError, match="refusing"):
        recv_frame(right)


def test_non_json_frame_raises(pair):
    left, right = pair
    body = b"\xff\xfenot json"
    left.sendall(struct.pack(">I", len(body)) + body)
    with pytest.raises(ProtocolError, match="not valid JSON"):
        recv_frame(right)


def test_non_object_frame_raises(pair):
    left, right = pair
    body = b"[1, 2, 3]"
    left.sendall(struct.pack(">I", len(body)) + body)
    with pytest.raises(ProtocolError, match="JSON object"):
        recv_frame(right)


def test_large_frame_round_trip(pair):
    left, right = pair
    payload = {"rows": [{"value": i / 7} for i in range(5000)]}
    received: dict = {}
    # Socketpair buffers are small: sender and receiver must run concurrently.
    thread = threading.Thread(target=lambda: received.update(recv_frame(right)))
    thread.start()
    send_frame(left, payload)
    thread.join(timeout=10)
    assert received == payload


def test_error_response_shape():
    frame = error_response("queue_full", "full up", retry_after=2.5)
    assert frame == {"ok": False, "code": "queue_full", "error": "full up", "retry_after": 2.5}


def test_error_response_rejects_unknown_code():
    with pytest.raises(AssertionError):
        error_response("not_a_code", "nope")


def test_error_codes_are_unique():
    assert len(set(ERROR_CODES)) == len(ERROR_CODES)


@pytest.mark.parametrize(
    ("endpoint", "expected"),
    [
        ("localhost:9474", ("localhost", 9474)),
        ("10.1.2.3:80", ("10.1.2.3", 80)),
        (":8080", ("127.0.0.1", 8080)),
        ("justahost", ("justahost", 0)),
    ],
)
def test_parse_endpoint(endpoint, expected):
    assert parse_endpoint(endpoint) == expected


def test_parse_endpoint_rejects_bad_port():
    with pytest.raises(ValueError, match="invalid endpoint"):
        parse_endpoint("host:notaport")


@pytest.mark.parametrize(
    ("endpoints", "expected"),
    [
        ("a:1", [("a", 1)]),
        ("a:1,b:2", [("a", 1), ("b", 2)]),
        (" a:1 , b:2 ,", [("a", 1), ("b", 2)]),  # whitespace + trailing comma
        ("a:1,a:1,b:2", [("a", 1), ("b", 2)]),  # duplicates dropped
        (["a:1", "b:2"], [("a", 1), ("b", 2)]),  # sequence form
    ],
)
def test_parse_endpoints(endpoints, expected):
    assert parse_endpoints(endpoints) == expected


def test_parse_endpoints_rejects_empty():
    with pytest.raises(ValueError, match="no endpoints"):
        parse_endpoints(" , ,")


# ----------------------------------------------------- live-server fuzzing
#
# Every malformed byte stream below must leave the daemon fully alive: the
# offending connection is answered (bad_frame) or dropped, and a fresh
# client's ping round-trips afterwards.


class _IdleSession:
    """Session stand-in for fuzzing: no store, run never called."""

    store = None

    def run(self, spec):  # pragma: no cover - fuzz frames never reach run
        raise AssertionError("fuzz frames must never evaluate")

    def close(self) -> None:
        pass


@pytest.fixture()
def live_server():
    from repro.serve.server import ReproServer

    server = ReproServer(_IdleSession(), port=0)
    server.start()
    try:
        yield server
    finally:
        server.stop()
        server.join(timeout=30.0)


def _raw(server) -> socket.socket:
    sock = socket.create_connection(("127.0.0.1", server.port), timeout=10.0)
    sock.settimeout(10.0)
    return sock


def _assert_server_alive(server) -> None:
    with _raw(server) as probe:
        send_frame(probe, {"verb": "ping"})
        assert recv_frame(probe)["ok"]


def _assert_dropped(sock: socket.socket) -> None:
    """The server must sever this connection (EOF or RST), not answer or hang."""
    try:
        assert sock.recv(1) == b""
    except ConnectionResetError:
        pass  # closed with unread bytes pending: the kernel answers RST


def test_fuzz_truncated_length_prefix(live_server):
    with _raw(live_server) as sock:
        sock.sendall(b"\x00\x00")  # half a length header, then EOF
        sock.shutdown(socket.SHUT_WR)
        _assert_dropped(sock)
    _assert_server_alive(live_server)


def test_fuzz_oversize_declared_length(live_server):
    with _raw(live_server) as sock:
        sock.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
        _assert_dropped(sock)
    _assert_server_alive(live_server)


def test_fuzz_non_utf8_body(live_server):
    with _raw(live_server) as sock:
        body = b"\xff\xfe\xfd{not json"
        sock.sendall(struct.pack(">I", len(body)) + body)
        _assert_dropped(sock)
    _assert_server_alive(live_server)


def test_fuzz_non_object_json(live_server):
    with _raw(live_server) as sock:
        body = b"[1, 2, 3]"
        sock.sendall(struct.pack(">I", len(body)) + body)
        _assert_dropped(sock)
    _assert_server_alive(live_server)


def test_fuzz_garbage_after_valid_frame(live_server):
    # A live, mid-conversation connection that turns to garbage is dropped
    # without disturbing the frames already answered.
    with _raw(live_server) as sock:
        send_frame(sock, {"verb": "ping"})
        assert recv_frame(sock)["ok"]
        sock.sendall(b"GET / HTTP/1.1\r\n\r\n")  # port-scanner noise
        _assert_dropped(sock)
    _assert_server_alive(live_server)


def test_fuzz_frame_with_no_verb_is_answered(live_server):
    with _raw(live_server) as sock:
        send_frame(sock, {"spec": {"kind": "simulate"}})
        response = recv_frame(sock)
    assert response["ok"] is False and response["code"] == "bad_frame"
    _assert_server_alive(live_server)


def test_fuzz_non_string_timeout_answers_bad_frame(live_server):
    # A non-numeric timeout used to kill the handler thread mid-dispatch;
    # it must now answer bad_frame and keep the connection usable.
    with _raw(live_server) as sock:
        send_frame(sock, {"verb": "result", "job_id": "job-1", "timeout": "soon"})
        response = recv_frame(sock)
        assert response["code"] == "bad_frame"
        send_frame(sock, {"verb": "watch", "job_id": "job-1", "timeout": [1]})
        response = recv_frame(sock)
        assert response["code"] == "bad_frame"
        # The same connection still serves well-formed requests.
        send_frame(sock, {"verb": "ping"})
        assert recv_frame(sock)["ok"]
    _assert_server_alive(live_server)
