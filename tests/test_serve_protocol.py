"""Wire-protocol unit tests: framing, limits, endpoint parsing."""

from __future__ import annotations

import socket
import struct
import threading

import pytest

from repro.serve.protocol import (
    ERROR_CODES,
    MAX_FRAME_BYTES,
    ProtocolError,
    error_response,
    parse_endpoint,
    recv_frame,
    send_frame,
)


@pytest.fixture()
def pair():
    left, right = socket.socketpair()
    yield left, right
    left.close()
    right.close()


def test_frame_round_trip(pair):
    left, right = pair
    payload = {"verb": "submit", "spec": {"kind": "simulate"}, "n": 3, "pi": 3.25}
    send_frame(left, payload)
    assert recv_frame(right) == payload


def test_multiple_frames_in_sequence(pair):
    left, right = pair
    for index in range(5):
        send_frame(left, {"index": index})
    for index in range(5):
        assert recv_frame(right) == {"index": index}


def test_unicode_survives_the_wire(pair):
    left, right = pair
    payload = {"name": "naïve-stressmark-μarch"}
    send_frame(left, payload)
    assert recv_frame(right) == payload


def test_clean_eof_returns_none(pair):
    left, right = pair
    left.close()
    assert recv_frame(right) is None


def test_eof_mid_frame_raises(pair):
    left, right = pair
    left.sendall(struct.pack(">I", 100) + b"short")
    left.close()
    with pytest.raises(ProtocolError, match="mid-frame"):
        recv_frame(right)


def test_oversized_header_refused(pair):
    left, right = pair
    left.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
    with pytest.raises(ProtocolError, match="refusing"):
        recv_frame(right)


def test_non_json_frame_raises(pair):
    left, right = pair
    body = b"\xff\xfenot json"
    left.sendall(struct.pack(">I", len(body)) + body)
    with pytest.raises(ProtocolError, match="not valid JSON"):
        recv_frame(right)


def test_non_object_frame_raises(pair):
    left, right = pair
    body = b"[1, 2, 3]"
    left.sendall(struct.pack(">I", len(body)) + body)
    with pytest.raises(ProtocolError, match="JSON object"):
        recv_frame(right)


def test_large_frame_round_trip(pair):
    left, right = pair
    payload = {"rows": [{"value": i / 7} for i in range(5000)]}
    received: dict = {}
    # Socketpair buffers are small: sender and receiver must run concurrently.
    thread = threading.Thread(target=lambda: received.update(recv_frame(right)))
    thread.start()
    send_frame(left, payload)
    thread.join(timeout=10)
    assert received == payload


def test_error_response_shape():
    frame = error_response("queue_full", "full up", retry_after=2.5)
    assert frame == {"ok": False, "code": "queue_full", "error": "full up", "retry_after": 2.5}


def test_error_response_rejects_unknown_code():
    with pytest.raises(AssertionError):
        error_response("not_a_code", "nope")


def test_error_codes_are_unique():
    assert len(set(ERROR_CODES)) == len(ERROR_CODES)


@pytest.mark.parametrize(
    ("endpoint", "expected"),
    [
        ("localhost:9474", ("localhost", 9474)),
        ("10.1.2.3:80", ("10.1.2.3", 80)),
        (":8080", ("127.0.0.1", 8080)),
        ("justahost", ("justahost", 0)),
    ],
)
def test_parse_endpoint(endpoint, expected):
    assert parse_endpoint(endpoint) == expected


def test_parse_endpoint_rejects_bad_port():
    with pytest.raises(ValueError, match="invalid endpoint"):
        parse_endpoint("host:notaport")
