"""Tests for the synthetic ISA instruction definitions."""

from __future__ import annotations

import pytest

from repro.isa.instructions import (
    ARCH_REG_COUNT,
    Instruction,
    InstructionClass,
    OperandWidth,
    make_alu,
    make_branch,
    make_div,
    make_load,
    make_mul,
    make_nop,
    make_prefetch,
    make_store,
)
from repro.isa.memoryref import FixedPattern


PATTERN = FixedPattern(address=64)


class TestInstructionClass:
    def test_memory_classes(self):
        assert InstructionClass.LOAD.is_memory
        assert InstructionClass.STORE.is_memory
        assert InstructionClass.PREFETCH.is_memory
        assert not InstructionClass.INT_ALU.is_memory

    def test_arithmetic_classes(self):
        assert InstructionClass.INT_ALU.is_arithmetic
        assert InstructionClass.INT_MUL.is_arithmetic
        assert InstructionClass.INT_DIV.is_arithmetic
        assert not InstructionClass.LOAD.is_arithmetic
        assert not InstructionClass.BRANCH.is_arithmetic


class TestOperandWidth:
    def test_bits(self):
        assert OperandWidth.WORD32.bits == 32
        assert OperandWidth.WORD64.bits == 64

    def test_ace_fraction(self):
        assert OperandWidth.WORD64.ace_fraction() == pytest.approx(1.0)
        assert OperandWidth.WORD32.ace_fraction() == pytest.approx(0.5)

    def test_ace_fraction_capped(self):
        assert OperandWidth.WORD64.ace_fraction(datapath_bits=32) == pytest.approx(1.0)


class TestFactories:
    def test_alu(self):
        instruction = make_alu(3, [1, 2])
        assert instruction.opclass is InstructionClass.INT_ALU
        assert instruction.dest == 3
        assert instruction.srcs == (1, 2)
        assert instruction.ace
        assert instruction.writes_register

    def test_mul_and_div(self):
        assert make_mul(1, [2]).opclass is InstructionClass.INT_MUL
        assert make_div(1, [2]).opclass is InstructionClass.INT_DIV

    def test_load_requires_pattern(self):
        with pytest.raises(ValueError):
            Instruction(opclass=InstructionClass.LOAD, dest=1)

    def test_load(self):
        instruction = make_load(4, PATTERN, srcs=[2])
        assert instruction.is_load
        assert instruction.address_pattern is PATTERN
        assert instruction.writes_register

    def test_store(self):
        instruction = make_store(PATTERN, srcs=[5])
        assert instruction.is_store
        assert instruction.dest is None
        assert not instruction.writes_register

    def test_store_requires_value_source(self):
        with pytest.raises(ValueError):
            make_store(PATTERN, srcs=[])

    def test_branch(self):
        instruction = make_branch(srcs=[1], taken_probability=0.3)
        assert instruction.is_branch
        assert instruction.taken_probability == pytest.approx(0.3)
        assert not instruction.writes_register

    def test_branch_probability_validation(self):
        with pytest.raises(ValueError):
            make_branch(taken_probability=1.5)

    def test_nop_is_unace(self):
        instruction = make_nop()
        assert instruction.opclass is InstructionClass.NOP
        assert not instruction.ace
        assert instruction.data_ace_fraction() == 0.0

    def test_prefetch_is_unace_memory(self):
        instruction = make_prefetch(PATTERN)
        assert instruction.opclass.is_memory
        assert not instruction.ace


class TestValidation:
    def test_destination_range(self):
        with pytest.raises(ValueError):
            make_alu(ARCH_REG_COUNT, [0])

    def test_source_range(self):
        with pytest.raises(ValueError):
            make_alu(0, [ARCH_REG_COUNT])

    def test_negative_register(self):
        with pytest.raises(ValueError):
            make_alu(0, [-1])


class TestAceFraction:
    def test_unace_instruction_zero(self):
        assert make_alu(1, [2], ace=False).data_ace_fraction() == 0.0

    def test_narrow_width_half(self):
        assert make_alu(1, [2], width=OperandWidth.WORD32).data_ace_fraction() == pytest.approx(0.5)

    def test_full_width(self):
        assert make_load(1, PATTERN).data_ace_fraction() == pytest.approx(1.0)


class TestImmutability:
    def test_frozen(self):
        instruction = make_alu(1, [2])
        with pytest.raises(AttributeError):
            instruction.dest = 5  # type: ignore[misc]
