"""Tests for the unified VulnerabilityLedger (events, accounts, edge cases)."""

from __future__ import annotations

import pickle

import pytest

from repro.registry import RegistryError
from repro.uarch.config import baseline_config, extended_config
from repro.uarch.structures import StructureName
from repro.vuln import (
    STRUCTURES,
    AceAccumulator,
    LifetimeTracker,
    ResidencyTracker,
    VulnerabilityLedger,
)


@pytest.fixture()
def ledger() -> VulnerabilityLedger:
    return VulnerabilityLedger(baseline_config())


class TestLedgerAccounts:
    def test_accounts_follow_registry_order(self, ledger):
        values = [name.value for name in ledger.accounts]
        stock = ["iq", "rob", "lq_tag", "lq_data", "sq_tag", "sq_data",
                 "rf", "fu", "dl1", "l2", "dtlb"]
        assert values == stock

    def test_flag_gated_structures_join_when_enabled(self):
        ledger = VulnerabilityLedger(extended_config())
        values = [name.value for name in ledger.accounts]
        assert values[-2:] == ["sb", "l2_tlb"]
        assert ledger.account("sb").entries == 32
        assert ledger.account("l2_tlb").entries == 512

    def test_account_lookup_accepts_names_and_members(self, ledger):
        assert ledger.account("rob") is ledger.account(StructureName.ROB)

    def test_unknown_structure_nearest_match(self, ledger):
        with pytest.raises(RegistryError, match="did you mean 'rob'"):
            ledger.account("robb")

    def test_disabled_structure_mentions_gating(self, ledger):
        with pytest.raises(RegistryError, match="disabled for this machine configuration"):
            ledger.account("sb")

    def test_membership(self, ledger):
        assert "rob" in ledger
        assert StructureName.ROB in ledger
        assert "sb" not in ledger
        assert "no_such_structure" not in ledger

    def test_add_interval_and_credit_agree(self, ledger):
        ledger.add_interval("iq", 0, 10, ace_fraction=1.0)
        via_events = ledger.account("iq").ace_bit_cycles
        other = VulnerabilityLedger(baseline_config())
        bits = other.account("iq").bits_per_entry
        other.credit("iq", 10.0, 10.0 * bits)
        assert other.account("iq").ace_bit_cycles == via_events
        assert other.account("iq").occupied_entry_cycles == ledger.account("iq").occupied_entry_cycles

    def test_add_interval_validation(self, ledger):
        with pytest.raises(ValueError):
            ledger.add_interval("rob", 10, 5)
        with pytest.raises(ValueError):
            ledger.add_interval("rob", 0, 10, ace_fraction=1.5)

    def test_credit_rejects_negative_sums(self, ledger):
        with pytest.raises(ValueError):
            ledger.credit("rob", -1.0, 0.0)
        with pytest.raises(ValueError):
            ledger.credit("rob", 0.0, -1.0)
        assert ledger.account("rob").ace_bit_cycles == 0.0

    def test_word_tracker_defaults_to_descriptor_granularity(self, ledger):
        # Caches are tracked per 8-byte word, not per line.
        assert ledger.word_tracker("dl1").word_bits == 64
        # The ledger facade mints the same tracker the hierarchy would.
        ledger2 = VulnerabilityLedger(baseline_config())
        ledger2.fill("dl1", 0, 0, cycle=0)
        assert ledger2.word_tracker("dl1", 64).word_bits == 64

    def test_word_tracker_rejects_conflicting_granularity(self, ledger):
        ledger.word_tracker("dl1", 64)
        with pytest.raises(ValueError, match="64 bits/event"):
            ledger.word_tracker("dl1", 512)


class TestAddIntervalsBulk:
    """Bulk interval credit must be bit-identical to the looped form."""

    def _looped(self, starts, ends, fractions=None):
        ledger = VulnerabilityLedger(baseline_config())
        for index in range(len(starts)):
            if fractions is None:
                ledger.add_interval("dtlb", starts[index], ends[index])
            else:
                ledger.add_interval("dtlb", starts[index], ends[index], fractions[index])
        return ledger.account("dtlb")

    def test_bulk_equals_loop_on_integer_columns(self):
        starts = list(range(0, 640, 10))
        ends = [start + 7 for start in starts]
        ledger = VulnerabilityLedger(baseline_config())
        ledger.add_intervals("dtlb", starts, ends)
        looped = self._looped(starts, ends)
        assert ledger.account("dtlb").ace_bit_cycles == looped.ace_bit_cycles
        assert ledger.account("dtlb").occupied_entry_cycles == looped.occupied_entry_cycles

    def test_bulk_equals_loop_with_zero_one_fractions(self):
        starts = list(range(0, 160, 10))
        ends = [start + 5 for start in starts]
        fractions = [1.0 if index % 3 else 0.0 for index in range(len(starts))]
        ledger = VulnerabilityLedger(baseline_config())
        ledger.add_intervals("dtlb", starts, ends, fractions)
        looped = self._looped(starts, ends, fractions)
        assert ledger.account("dtlb").ace_bit_cycles == looped.ace_bit_cycles
        assert ledger.account("dtlb").occupied_entry_cycles == looped.occupied_entry_cycles

    def test_fractional_ace_falls_back_to_exact_loop(self):
        starts = list(range(0, 160, 10))
        ends = [start + 5 for start in starts]
        fractions = [0.5] * len(starts)
        ledger = VulnerabilityLedger(baseline_config())
        ledger.add_intervals("dtlb", starts, ends, fractions)
        looped = self._looped(starts, ends, fractions)
        assert ledger.account("dtlb").ace_bit_cycles == looped.ace_bit_cycles

    def test_small_batches_take_the_loop(self):
        ledger = VulnerabilityLedger(baseline_config())
        ledger.add_intervals("dtlb", [0, 5], [10, 9])
        looped = self._looped([0, 5], [10, 9])
        assert ledger.account("dtlb").ace_bit_cycles == looped.ace_bit_cycles

    def test_mismatched_columns_raise(self, ledger):
        with pytest.raises(ValueError, match="equal lengths"):
            ledger.add_intervals("dtlb", [0, 1], [2])
        with pytest.raises(ValueError, match="equal lengths"):
            ledger.add_intervals("dtlb", [0, 1], [2, 3], [1.0])

    def test_negative_duration_raises_like_the_loop(self):
        starts = list(range(0, 160, 10))
        ends = [start + 5 for start in starts]
        ends[9] = starts[9] - 1  # one inverted interval inside a big batch
        ledger = VulnerabilityLedger(baseline_config())
        with pytest.raises(ValueError):
            ledger.add_intervals("dtlb", starts, ends)

    def test_bulk_works_without_numpy(self, monkeypatch):
        from repro.vuln import ledger as ledger_module

        monkeypatch.setattr(ledger_module, "_np", None)
        starts = list(range(0, 640, 10))
        ends = [start + 7 for start in starts]
        ledger = VulnerabilityLedger(baseline_config())
        ledger.add_intervals("dtlb", starts, ends)
        looped = self._looped(starts, ends)
        assert ledger.account("dtlb").ace_bit_cycles == looped.ace_bit_cycles


class TestStructureNameOpenEnum:
    def test_lookup_by_value(self):
        assert StructureName("iq") is StructureName.IQ

    def test_unknown_value_raises(self):
        with pytest.raises(ValueError):
            StructureName("bogus_structure_xyz")

    def test_pickle_round_trip_preserves_identity(self):
        for member in StructureName:
            assert pickle.loads(pickle.dumps(member)) is member

    def test_registry_and_enum_agree(self):
        for name in STRUCTURES.names():
            assert StructureName(name).value == name

    def test_metadata(self):
        assert StructureName.IQ.is_core and StructureName.IQ.is_queueing
        assert StructureName.RF.is_core and not StructureName.RF.is_queueing
        assert not StructureName.DL1.is_core
        assert StructureName.SB.is_core and StructureName.SB.is_queueing
        assert StructureName.L2_TLB.group == "dl1_dtlb"


class TestEventOrderEdgeCases:
    """Event-order edge cases, asserting parity with LifetimeTracker semantics.

    Each case drives the same events through the ledger facade (on the DL1
    structure) and through a standalone tracker; the credited ACE time must
    match — including the PR 3 dirty-ACE Write=>Evict fix for fills over
    still-live words.
    """

    def _pair(self):
        ledger = VulnerabilityLedger(baseline_config())
        word_bits = 64
        reference = LifetimeTracker(word_bits=word_bits)
        tracker = ledger.word_tracker("dl1", word_bits)
        return ledger, tracker, reference

    def test_fill_after_fill_without_evict_keeps_dirty_ace_credit(self):
        ledger, tracker, reference = self._pair()
        for sink in (reference, None):
            if sink is None:
                ledger.write("dl1", 0, 0, cycle=0, ace=True)
                ledger.fill("dl1", 0, 0, cycle=30, ace=True)  # fill over live word
                ledger.flush("dl1", cycle=100)
            else:
                sink.record_write(0, 0, cycle=0, ace=True)
                sink.record_fill(0, 0, cycle=30, ace=True)
                sink.finalize(cycle=100)
        # The overwritten dirty ACE word keeps its Write=>Evict credit (30
        # cycles); the clean refill is un-ACE at the end-of-run flush.
        assert tracker.ace_word_cycles == reference.ace_word_cycles == 30

    def test_fill_after_unace_write_grants_no_credit(self):
        ledger, tracker, reference = self._pair()
        reference.record_write(0, 0, cycle=0, ace=False)
        reference.record_fill(0, 0, cycle=30, ace=True)
        reference.finalize(cycle=100)
        ledger.write("dl1", 0, 0, cycle=0, ace=False)
        ledger.fill("dl1", 0, 0, cycle=30, ace=True)
        ledger.flush("dl1", cycle=100)
        assert tracker.ace_word_cycles == reference.ace_word_cycles == 0

    def test_evict_without_fill_is_a_noop(self):
        ledger, tracker, reference = self._pair()
        reference.record_evict(5, 3, cycle=40)
        ledger.evict("dl1", 5, 3, cycle=40)
        assert tracker.ace_word_cycles == reference.ace_word_cycles == 0
        assert tracker.live_words() == reference.live_words() == 0

    def test_read_after_evict_restarts_tracking(self):
        ledger, tracker, reference = self._pair()
        for sink in (reference, None):
            if sink is None:
                ledger.fill("dl1", 1, 0, cycle=0, ace=True)
                ledger.evict("dl1", 1, 0, cycle=10)
                ledger.read("dl1", 1, 0, cycle=20, ace=True)   # warm-up style restart
                ledger.read("dl1", 1, 0, cycle=50, ace=True)   # read=>read is ACE
                ledger.flush("dl1", cycle=100)
            else:
                sink.record_fill(1, 0, cycle=0, ace=True)
                sink.record_evict(1, 0, cycle=10)
                sink.record_read(1, 0, cycle=20, ace=True)
                sink.record_read(1, 0, cycle=50, ace=True)
                sink.finalize(cycle=100)
        # fill=>evict is un-ACE; the re-started read=>read interval (30
        # cycles) is ACE; read=>end-of-run is un-ACE.
        assert tracker.ace_word_cycles == reference.ace_word_cycles == 30

    def test_flush_at_end_of_run_is_an_eviction(self):
        ledger, tracker, reference = self._pair()
        for sink in (reference, None):
            if sink is None:
                ledger.write("dl1", 2, 1, cycle=10, ace=True)
                ledger.fill("dl1", 3, 0, cycle=10, ace=True)
                ledger.flush("dl1", cycle=60)
            else:
                sink.record_write(2, 1, cycle=10, ace=True)
                sink.record_fill(3, 0, cycle=10, ace=True)
                sink.finalize(cycle=60)
        # Dirty ACE data is still needed at the end of the window (50 ACE
        # cycles); the clean filled word is not.
        assert tracker.ace_word_cycles == reference.ace_word_cycles == 50
        assert tracker.live_words() == reference.live_words() == 0

    def test_flush_is_idempotent(self):
        ledger, tracker, _ = self._pair()
        ledger.write("dl1", 0, 0, cycle=0, ace=True)
        ledger.flush("dl1", cycle=10)
        ledger.flush("dl1", cycle=99)
        assert tracker.ace_word_cycles == 10


class TestCollect:
    def test_collect_folds_tracker_totals_into_accounts(self):
        ledger = VulnerabilityLedger(baseline_config())
        tracker = ledger.word_tracker("dl1", 64)
        tracker.record_write(0, 0, cycle=0, ace=True)
        tracker.finalize(cycle=10)
        residency = ledger.residency_tracker("dtlb", 64)
        residency.credit(25)
        accounts = ledger.collect()
        assert accounts[StructureName.DL1].ace_bit_cycles == 10 * 64
        assert accounts[StructureName.DTLB].ace_bit_cycles == 25 * 64

    def test_collect_is_idempotent(self):
        ledger = VulnerabilityLedger(baseline_config())
        tracker = ledger.word_tracker("l2", 64)
        tracker.record_write(0, 0, cycle=0, ace=True)
        tracker.finalize(cycle=5)
        ledger.collect()
        ledger.collect()
        assert ledger.accounts[StructureName.L2].ace_bit_cycles == 5 * 64

    def test_total_events(self):
        ledger = VulnerabilityLedger(baseline_config())
        ledger.fill("dl1", 0, 0, cycle=0)
        ledger.read("dl1", 0, 0, cycle=1, ace=True)
        ledger.residency_tracker("dtlb", 64).credit(3)
        assert ledger.total_events() == 3


class TestResidencyTracker:
    def test_negative_durations_are_dropped(self):
        tracker = ResidencyTracker(entry_bits=32)
        tracker.credit(10)
        tracker.credit(-5)
        assert tracker.ace_entry_cycles == 10
        assert tracker.ace_bit_cycles() == 320.0


class TestAccumulatorCompat:
    def test_same_class_under_both_import_paths(self):
        from repro.uarch.structures import AceAccumulator as LegacyAccumulator

        assert LegacyAccumulator is AceAccumulator
