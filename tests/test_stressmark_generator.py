"""Tests for the end-to-end stressmark generator (GA + codegen + simulator)."""

from __future__ import annotations

import pytest

from repro.avf.analysis import StructureGroup
from repro.ga.engine import GAParameters
from repro.stressmark.generator import StressmarkGenerator, StressmarkResult, reference_knobs
from repro.stressmark.knobs import KnobSpace
from repro.uarch.config import baseline_config, config_a
from repro.uarch.faultrates import rhc_fault_rates, unit_fault_rates


@pytest.fixture(scope="module")
def quick_generator():
    return StressmarkGenerator(
        config=baseline_config(),
        ga_parameters=GAParameters(population_size=4, generations=2, seed=3),
        max_instructions=2_000,
    )


class TestReferenceKnobs:
    def test_baseline_matches_figure5a_shape(self):
        knobs = reference_knobs(baseline_config())
        assert knobs.loop_size == 81
        assert knobs.num_loads == 29
        assert knobs.num_stores == 28
        assert knobs.num_independent_arithmetic == 5
        assert knobs.num_dependent_on_miss == 7
        assert knobs.dependency_distance == 6
        assert knobs.use_l2_miss

    def test_scales_with_rob(self):
        knobs = reference_knobs(config_a())
        assert knobs.loop_size > 81
        assert knobs.loop_size <= round(96 * 1.2)

    def test_l2_hit_variant(self):
        assert not reference_knobs(baseline_config(), use_l2_miss=False).use_l2_miss


class TestEvaluate:
    def test_returns_fitness_report_program(self, quick_generator):
        fitness, report, program = quick_generator.evaluate(reference_knobs(baseline_config()))
        assert fitness > 0.0
        assert report.core_ser > 0.0
        assert program.body_size == 81

    def test_reference_beats_degenerate_candidate(self, quick_generator):
        reference = reference_knobs(baseline_config())
        degenerate = reference.derive(
            num_loads=0, num_stores=0, num_dependent_on_miss=0,
            num_independent_arithmetic=1, loop_size=16, use_l2_miss=False,
        )
        good_fitness, _, _ = quick_generator.evaluate(reference)
        weak_fitness, _, _ = quick_generator.evaluate(degenerate)
        assert good_fitness > weak_fitness

    def test_history_kept_when_requested(self):
        generator = StressmarkGenerator(
            config=baseline_config(),
            max_instructions=1_500,
            keep_history=True,
        )
        generator.evaluate(reference_knobs(baseline_config()))
        assert len(generator.history) == 1
        assert generator.history[0].fitness > 0.0

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            StressmarkGenerator(config=baseline_config(), max_instructions=0)


class TestGenerate:
    def test_ga_run_produces_result(self, quick_generator):
        result = quick_generator.generate(initial_knobs=[reference_knobs(baseline_config())])
        assert isinstance(result, StressmarkResult)
        assert result.fitness > 0.0
        assert result.program.body_size >= 16
        assert result.report.core_ser > 0.0
        assert len(result.convergence_trace) == 2
        assert result.ga_result.evaluations >= 4

    def test_seeded_reference_never_regresses(self, quick_generator):
        reference = reference_knobs(baseline_config())
        reference_fitness, _, _ = quick_generator.evaluate(reference)
        result = quick_generator.generate(initial_knobs=[reference])
        assert result.fitness >= reference_fitness - 1e-9

    def test_knob_table_available(self, quick_generator):
        result = quick_generator.generate(initial_knobs=[reference_knobs(baseline_config())])
        table = result.knob_table()
        assert "Loop Size" in table and "No. of loads" in table

    def test_rhc_fault_rates_accepted(self):
        generator = StressmarkGenerator(
            config=baseline_config(),
            fault_rates=rhc_fault_rates(),
            ga_parameters=GAParameters(population_size=4, generations=2, seed=9),
            max_instructions=1_500,
        )
        result = generator.generate(initial_knobs=[reference_knobs(baseline_config())])
        assert result.fault_rates.name == "rhc"
        assert result.report.core_ser > 0.0


class TestEdrAdaptation:
    def test_core_only_fitness_prefers_l2_hit_loop_under_edr(self):
        """Paper, Section VI-A (Config EDR): with the ROB/LQ/SQ protected the
        GA switches to the L2-miss-free generator.  Under a core-only fitness
        the L2-hit variant of the reference knobs scores strictly higher than
        the L2-miss variant, which is the signal that drives that switch."""
        from repro.stressmark.fitness import FitnessFunction
        from repro.uarch.faultrates import edr_fault_rates

        edr = edr_fault_rates()
        generator = StressmarkGenerator(
            config=baseline_config(),
            fault_rates=edr,
            fitness=FitnessFunction.core_only(edr),
            max_instructions=3_000,
        )
        miss_fitness, _, _ = generator.evaluate(reference_knobs(baseline_config(), use_l2_miss=True))
        hit_fitness, _, _ = generator.evaluate(reference_knobs(baseline_config(), use_l2_miss=False))
        assert hit_fitness > miss_fitness

    def test_edr_worst_case_below_rhc_and_baseline(self):
        """Protecting structures must lower the achievable worst case."""
        from repro.stressmark.fitness import FitnessFunction
        from repro.uarch.faultrates import edr_fault_rates, unit_fault_rates

        reference = reference_knobs(baseline_config())
        generator = StressmarkGenerator(config=baseline_config(), max_instructions=3_000)
        result = generator.simulate(reference)
        unit_core = FitnessFunction.core_only(unit_fault_rates())(result)
        rhc_core = FitnessFunction.core_only(rhc_fault_rates())(result)
        edr_core = FitnessFunction.core_only(edr_fault_rates())(result)
        assert unit_core > rhc_core > edr_core


class TestStressmarkQuality:
    def test_reference_stressmark_reaches_paper_like_levels(self):
        """The paper's knob setting should already induce very high SER."""
        generator = StressmarkGenerator(config=baseline_config(), max_instructions=6_000)
        _, report, _ = generator.evaluate(reference_knobs(baseline_config()))
        assert report.ser(StructureGroup.QS) > 0.7          # paper: 0.797
        assert report.ser(StructureGroup.DL1_DTLB) > 0.9    # paper: 0.997
        assert report.ser(StructureGroup.L2) > 0.85         # paper: 0.931
        assert report.core_ser > 0.55                        # paper: 0.63

    def test_l2_hit_variant_has_higher_ipc(self):
        generator = StressmarkGenerator(config=baseline_config(), max_instructions=3_000)
        _, miss_report, _ = generator.evaluate(reference_knobs(baseline_config(), use_l2_miss=True))
        _, hit_report, _ = generator.evaluate(reference_knobs(baseline_config(), use_l2_miss=False))
        assert hit_report.ipc > miss_report.ipc
