"""Tests for the stressmark code generator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.instructions import InstructionClass
from repro.isa.program import BranchBehavior
from repro.stressmark.codegen import CodeGenerator
from repro.stressmark.knobs import KnobSpace, StressmarkKnobs
from repro.stressmark.generator import reference_knobs
from repro.uarch.config import baseline_config, config_a
from repro.utils.rng import DeterministicRng


@pytest.fixture(scope="module")
def generator():
    return CodeGenerator(baseline_config())


def knobs(**overrides) -> StressmarkKnobs:
    base = reference_knobs(baseline_config())
    return base.derive(**overrides) if overrides else base


class TestLoopStructure:
    def test_body_size_equals_loop_size(self, generator):
        program = generator.generate(knobs())
        assert program.body_size == knobs().loop_size

    def test_first_instruction_is_pointer_chase(self, generator):
        program = generator.generate(knobs())
        chase = program.body[0]
        assert chase.opclass is InstructionClass.LOAD
        assert chase.dest in chase.srcs  # self-dependent: no MLP across iterations
        assert 0 in program.pointer_chase_indices

    def test_last_instruction_is_loop_branch(self, generator):
        program = generator.generate(knobs())
        branch_index = program.body_size - 1
        assert program.body[branch_index].opclass is InstructionClass.BRANCH
        assert program.branch_behavior(branch_index) is BranchBehavior.LOOP_CLOSING

    def test_every_instruction_is_ace(self, generator):
        program = generator.generate(knobs())
        assert program.ace_instruction_fraction() == pytest.approx(1.0)

    def test_instruction_counts_match_knobs(self, generator):
        program = generator.generate(knobs())
        labels = [instruction.label for instruction in program.body]
        assert labels.count("cover_load") == knobs().num_loads
        assert labels.count("cover_store") == knobs().num_stores
        assert labels.count("independent_arith") == knobs().num_independent_arithmetic
        assert labels.count("dependent_on_miss") == knobs().num_dependent_on_miss

    def test_dependent_on_miss_reads_chase_register(self, generator):
        program = generator.generate(knobs())
        chase_dest = program.body[0].dest
        dependent = [i for i in program.body if i.label == "dependent_on_miss"]
        assert dependent
        assert all(chase_dest in instruction.srcs for instruction in dependent)

    def test_stores_consume_produced_values(self, generator):
        program = generator.generate(knobs())
        produced = {i.dest for i in program.body if i.dest is not None}
        stores = [i for i in program.body if i.label == "cover_store"]
        assert stores
        assert all(any(src in produced for src in i.srcs) for i in stores)

    def test_oversubscribed_knobs_are_repaired(self, generator):
        overloaded = knobs(num_loads=200, num_stores=200, loop_size=60)
        program = generator.generate(overloaded)
        assert program.body_size <= 60

    def test_warmup_region_covers_chase_region(self, generator):
        program = generator.generate(knobs())
        region = generator.chase_region_bytes(use_l2_miss=True)
        assert program.warmup_regions[0].size_bytes == region
        assert program.warmup_regions[0].recurrent

    def test_metadata_records_knobs(self, generator):
        program = generator.generate(knobs())
        assert program.metadata["knobs"] == knobs().to_genome()


class TestGeneratorVariants:
    def test_l2_miss_region_exceeds_l2(self, generator):
        config = baseline_config()
        region = generator.chase_region_bytes(use_l2_miss=True)
        assert region >= 2 * config.l2.size_bytes
        assert region >= config.dtlb.reach_bytes

    def test_l2_hit_region_fits_in_l2_but_exceeds_dl1(self, generator):
        config = baseline_config()
        region = generator.chase_region_bytes(use_l2_miss=False)
        assert region <= config.l2.size_bytes
        assert region >= 2 * config.dl1.size_bytes

    def test_config_a_regions_scale(self):
        generator = CodeGenerator(config_a())
        config = config_a()
        assert generator.chase_region_bytes(True) >= 2 * config.l2.size_bytes
        assert generator.chase_region_bytes(True) >= config.dtlb.reach_bytes

    def test_program_name_encodes_variant(self, generator):
        assert "miss" in generator.generate(knobs(use_l2_miss=True)).name
        assert "hit" in generator.generate(knobs(use_l2_miss=False)).name


class TestLongLatencyFraction:
    def test_all_long_latency(self, generator):
        program = generator.generate(knobs(fraction_long_latency_arithmetic=1.0))
        arithmetic = [i for i in program.body
                      if i.label in ("chain_arith", "independent_arith", "dependent_on_miss")]
        assert arithmetic
        assert all(i.opclass is InstructionClass.INT_MUL for i in arithmetic)

    def test_all_short_latency(self, generator):
        program = generator.generate(knobs(fraction_long_latency_arithmetic=0.0))
        arithmetic = [i for i in program.body
                      if i.label in ("chain_arith", "independent_arith", "dependent_on_miss")]
        assert all(i.opclass is InstructionClass.INT_ALU for i in arithmetic)


class TestRegReg:
    def test_full_reg_reg_uses_two_sources(self, generator):
        program = generator.generate(knobs(fraction_reg_reg=1.0, fraction_long_latency_arithmetic=0.5))
        chains = [i for i in program.body if i.label in ("chain_arith", "independent_arith")]
        assert chains
        assert all(len(i.srcs) == 2 for i in chains)

    def test_no_reg_reg_uses_single_source(self, generator):
        program = generator.generate(knobs(fraction_reg_reg=0.0))
        chains = [i for i in program.body if i.label in ("chain_arith", "independent_arith")]
        assert all(len(i.srcs) == 1 for i in chains)


class TestDeterminismAndScheduling:
    def test_same_seed_same_program(self, generator):
        a = generator.generate(knobs())
        b = generator.generate(knobs())
        assert [repr(i) for i in a.body] == [repr(i) for i in b.body]

    def test_different_seed_changes_schedule(self, generator):
        a = generator.generate(knobs(random_seed=1))
        b = generator.generate(knobs(random_seed=2))
        assert [i.label for i in a.body] != [i.label for i in b.body]

    def test_dependency_distance_spreads_chains(self, generator):
        """With distance d, consecutive chain instructions sit ~d slots apart."""
        tight = generator.generate(knobs(dependency_distance=1, avg_dependence_chain_length=4.0,
                                          num_loads=10, num_stores=10,
                                          num_independent_arithmetic=0, num_dependent_on_miss=0))
        spread = generator.generate(knobs(dependency_distance=6, avg_dependence_chain_length=4.0,
                                           num_loads=10, num_stores=10,
                                           num_independent_arithmetic=0, num_dependent_on_miss=0))

        def average_producer_consumer_gap(program):
            gaps = []
            last_writer = {}
            for position, instruction in enumerate(program.body):
                for src in instruction.srcs:
                    if src in last_writer:
                        gaps.append(position - last_writer[src])
                if instruction.dest is not None:
                    last_writer[instruction.dest] = position
            return sum(gaps) / len(gaps) if gaps else 0.0

        assert average_producer_consumer_gap(spread) > average_producer_consumer_gap(tight)


class TestRandomKnobsAlwaysGenerate:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=100_000))
    def test_any_sampled_knob_setting_produces_a_valid_program(self, seed):
        config = baseline_config()
        space = KnobSpace(config)
        genome = space.gene_space().sample(DeterministicRng(seed))
        program = CodeGenerator(config).generate(space.decode(genome))
        assert 4 <= program.body_size <= space.max_loop_size()
        assert program.body[-1].opclass is InstructionClass.BRANCH
        assert program.ace_instruction_fraction() == pytest.approx(1.0)
