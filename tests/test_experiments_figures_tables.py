"""Integration tests for the per-figure and per-table experiment drivers.

These run the actual experiment pipeline at a very small scale (the shared
session context), so they validate wiring and the qualitative shape of the
paper's results — stressmark above workloads, GA adaptation, estimator
ordering — rather than absolute values.
"""

from __future__ import annotations

import pytest

from repro.avf.analysis import StructureGroup
from repro.experiments.figures import figure3, figure4, figure5, figure6, figure7, figure8, figure9
from repro.experiments.tables import table1, table2, table3
from repro.uarch.structures import StructureName
from repro.workloads.profiles import WorkloadSuite


class TestConfigurationTables:
    def test_table1_matches_paper(self):
        table = table1()
        assert table["ROB"].startswith("80 entries")
        assert table["Integer Issue Queue"].startswith("20 entries")
        assert table["LQ/SQ"].startswith("32 entries")
        assert "64kB" in table["L1 D cache"]
        assert "256 entry" in table["DTLB"]
        assert table["Branch Misprediction Penalty"] == "7 cycles"

    def test_table2_matches_paper(self):
        table = table2()
        assert table["ROB"].startswith("96 entries")
        assert table["Integer Issue Queue"].startswith("32 entries")
        assert "512 entry" in table["DTLB"]
        assert "2MB" in table["L2 cache"]

    def test_tables_have_same_rows(self):
        assert set(table1()) == set(table2())


@pytest.mark.integration
class TestFigure4Mibench:
    """Figure 4 at tiny scale: the stressmark dominates the MiBench proxies."""

    @pytest.fixture(scope="class")
    def result(self, shared_context):
        return figure4(shared_context)

    def test_row_count(self, result):
        assert len(result.rows) == 1 + 12

    def test_stressmark_row_present(self, result):
        assert result.stressmark_row().is_stressmark

    def test_stressmark_exceeds_every_mibench_program(self, result):
        for group in (StructureGroup.QS, StructureGroup.QS_RF, StructureGroup.DL1_DTLB, StructureGroup.L2):
            assert result.stressmark_margin(group) > 1.0

    def test_rows_serialisable(self, result):
        row = result.rows[0].as_dict()
        assert "ser_qs" in row and "program" in row


@pytest.mark.integration
class TestFigure3Spec:
    @pytest.fixture(scope="class")
    def result(self, shared_context):
        return figure3(shared_context)

    def test_row_count(self, result):
        assert len(result.rows) == 1 + 21

    def test_stressmark_beats_best_spec_program(self, result):
        for group in (StructureGroup.QS, StructureGroup.DL1_DTLB, StructureGroup.L2):
            assert result.stressmark_margin(group) > 1.0

    def test_margins_in_plausible_paper_range(self, result):
        """Core margin ~1.3-3x, caches ~1.5-4x at reduced scale."""
        assert 1.0 < result.stressmark_margin(StructureGroup.QS_RF) < 5.0
        assert 1.0 < result.stressmark_margin(StructureGroup.DL1_DTLB) < 6.0


@pytest.mark.integration
class TestFigure5Convergence:
    @pytest.fixture(scope="class")
    def result(self, shared_context):
        return figure5(shared_context)

    def test_knob_table_fields(self, result):
        assert "Loop Size" in result.knob_table
        assert result.knob_table["No. of loads"] >= 0

    def test_trace_lengths(self, result, tiny_scale):
        assert len(result.average_fitness_per_generation) == tiny_scale.ga_generations
        assert len(result.best_fitness_per_generation) == tiny_scale.ga_generations

    def test_best_at_least_average(self, result):
        for best, average in zip(result.best_fitness_per_generation,
                                 result.average_fitness_per_generation):
            assert best >= average - 1e-9

    def test_final_fitness_positive(self, result):
        assert result.final_fitness > 0.0
        assert result.evaluations > 0


@pytest.mark.integration
class TestFigure6PerStructureAvf:
    @pytest.fixture(scope="class")
    def result(self, shared_context):
        return figure6(shared_context)

    def test_all_suites_present(self, result):
        assert set(result) == set(WorkloadSuite)

    def test_stressmark_row_in_each_suite(self, result):
        for suite_result in result.values():
            assert "stressmark" in suite_result.rows

    def test_row_counts(self, result):
        assert len(result[WorkloadSuite.SPEC_INT].rows) == 1 + 11
        assert len(result[WorkloadSuite.SPEC_FP].rows) == 1 + 10
        assert len(result[WorkloadSuite.MIBENCH].rows) == 1 + 12

    def test_stressmark_dominates_occupancy_structures(self, result):
        """The stressmark has the highest ROB and LQ tag AVF in every suite."""
        for suite_result in result.values():
            assert suite_result.stressmark_exceeds(StructureName.ROB)
            assert suite_result.stressmark_exceeds(StructureName.LQ_TAG)

    def test_avf_values_bounded(self, result):
        for suite_result in result.values():
            for row in suite_result.rows.values():
                assert all(0.0 <= value <= 1.0 for value in row.values())


@pytest.mark.integration
class TestFigure7And8Adaptation:
    @pytest.fixture(scope="class")
    def fig7(self, shared_context):
        return figure7(shared_context)

    @pytest.fixture(scope="class")
    def fig8(self, shared_context):
        return figure8(shared_context)

    def test_fig7_scenarios(self, fig7):
        assert set(fig7) == {"rhc", "edr"}
        for comparison in fig7.values():
            assert len(comparison.rows) == 1 + 33

    def test_fig7_stressmark_exceeds_workloads_in_core(self, fig7):
        for comparison in fig7.values():
            assert comparison.stressmark_margin(StructureGroup.QS_RF) > 1.0

    def test_fig8_fault_rate_table_matches_figure8a(self, fig8):
        assert fig8.fault_rate_table["rhc"]["rob"] == 0.25
        assert fig8.fault_rate_table["rhc"]["lq_tag"] == 0.4
        assert fig8.fault_rate_table["edr"]["rob"] == 0.0
        assert fig8.fault_rate_table["baseline"]["rob"] == 1.0

    def test_fig8_has_knobs_and_avf_per_scenario(self, fig8):
        assert set(fig8.knob_tables) == {"baseline", "rhc", "edr"}
        assert set(fig8.queueing_avf) == {"baseline", "rhc", "edr"}

    def test_fig8_core_ser_ordering(self, fig8):
        """Protecting structures must lower the achievable worst case."""
        assert fig8.core_ser["baseline"] > fig8.core_ser["rhc"] > fig8.core_ser["edr"]


@pytest.mark.integration
class TestFigure9DifferentMicroarchitecture:
    @pytest.fixture(scope="class")
    def result(self, shared_context):
        return figure9(shared_context)

    def test_both_configs_present(self, result):
        assert set(result.group_ser) == {"baseline", "config_a"}

    def test_high_ser_on_both(self, result):
        for config_name in ("baseline", "config_a"):
            assert result.group_ser[config_name][StructureGroup.QS] > 0.5
            assert result.group_ser[config_name][StructureGroup.DL1_DTLB] > 0.7

    def test_knobs_adapt_loop_size_to_larger_rob(self, result):
        assert result.knob_tables["config_a"]["Loop Size"] >= 16


@pytest.mark.integration
class TestTable3:
    @pytest.fixture(scope="class")
    def result(self, shared_context):
        return table3(shared_context)

    def test_scenarios(self, result):
        assert set(result.rows) == {"baseline", "rhc", "edr"}

    def test_stressmark_exceeds_best_individual_program(self, result):
        for row in result.rows.values():
            assert row.stressmark_ser > row.best_program_ser

    def test_raw_circuit_estimate_is_most_pessimistic(self, result):
        for row in result.rows.values():
            assert row.raw_circuit_ser >= row.stressmark_ser
            assert row.raw_circuit_ser >= row.sum_of_highest_per_structure_ser

    def test_baseline_raw_circuit_is_one(self, result):
        assert result.row("baseline").raw_circuit_ser == pytest.approx(1.0)

    def test_margin_over_best_program_in_paper_ballpark(self, result):
        """The paper reports 29-37% headroom; allow a wide band at tiny scale."""
        for row in result.rows.values():
            assert 1.05 < row.stressmark_margin_over_best_program() < 6.0

    def test_best_program_named(self, result):
        for row in result.rows.values():
            assert row.best_program_name.endswith("_proxy")
