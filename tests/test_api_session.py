"""Tests for the Session facade: resolution, execution, round trips."""

from __future__ import annotations

import pytest

from repro.api.presets import children_of_kind, preset_names, preset_spec
from repro.api.session import Session
from repro.api.spec import RunResult, RunSpec, SpecError

TINY_SCALE_OVERRIDES = {
    "workload_instructions": 1_500,
    "stressmark_instructions": 2_000,
    "ga_population": 4,
    "ga_generations": 2,
}


@pytest.fixture(scope="module")
def session():
    with Session() as session:
        yield session


def tiny(kind: str, **overrides) -> RunSpec:
    return RunSpec(kind=kind, scale_overrides=dict(TINY_SCALE_OVERRIDES), **overrides)


class TestResolution:
    def test_resolve_components(self, session):
        resolved = session.resolve(tiny("stressmark", config="config_a", fault_rates="rhc"))
        assert resolved.config.name == "config_a"
        assert resolved.fault_rates.name == "rhc"
        assert resolved.fitness.name == "balanced"
        assert resolved.scale.ga_population == 4

    def test_config_overrides_derive_a_named_variant(self, session):
        spec = tiny("stressmark", config_overrides={"rob_entries": 96})
        config = session.resolve_config(spec)
        assert config.rob_entries == 96
        assert config.name.startswith("baseline+")
        # Content-addressed: same overrides, same derived name.
        assert session.resolve_config(spec).name == config.name

    def test_nested_cache_override(self, session):
        spec = tiny("stressmark", config_overrides={"l2": {"size_bytes": 2 * 1024 * 1024}})
        config = session.resolve_config(spec)
        assert config.l2.size_bytes == 2 * 1024 * 1024
        assert config.l2.line_bytes == 64  # untouched fields preserved

    def test_invalid_nested_override_field(self, session):
        spec = tiny("stressmark", config_overrides={"l2": {"size": 1}})
        with pytest.raises(SpecError, match="unknown l2 override field 'size'"):
            session.resolve_config(spec)

    def test_profiles_from_suites_in_order(self, session):
        profiles = session.resolve_profiles(tiny("simulate", suites=("spec_int", "mibench")))
        assert len(profiles) == 11 + 12
        assert profiles[0].name == "400.perlbench_proxy"

    def test_profiles_default_to_all(self, session):
        assert len(session.resolve_profiles(tiny("simulate"))) == 33

    def test_explicit_workloads(self, session):
        profiles = session.resolve_profiles(tiny("simulate", workloads=("crc32_proxy", "sha_proxy")))
        assert [p.name for p in profiles] == ["crc32_proxy", "sha_proxy"]

    def test_unknown_workload_suggests(self, session):
        with pytest.raises(SpecError, match="did you mean 'crc32_proxy'"):
            session.resolve_profiles(tiny("simulate", workloads=("crc32_prox",)))

    def test_duplicate_profiles_deduplicated(self, session):
        profiles = session.resolve_profiles(tiny("simulate", suites=("mibench", "all")))
        names = [p.name for p in profiles]
        assert len(names) == len(set(names)) == 33


class TestSimulateRuns:
    def test_rows_and_provenance(self, session):
        spec = tiny("simulate", workloads=("crc32_proxy",))
        result = session.run(spec)
        assert len(result.rows) == 1
        assert result.rows[0]["program"] == "crc32_proxy"
        assert result.provenance["spec_digest"] == spec.digest
        assert result.provenance["config"] == "baseline"
        assert result.timing["seconds"] > 0

    def test_result_json_round_trip(self, session, tmp_path):
        spec = tiny("simulate", workloads=("crc32_proxy",))
        result = session.run(spec)
        path = tmp_path / "result.json"
        result.save(path)
        reloaded = RunResult.load(path)
        assert reloaded.spec_digest == spec.digest
        assert reloaded.rows == result.rows

    def test_runs_share_the_context_cache(self, session):
        spec = tiny("simulate", workloads=("crc32_proxy",))
        first = session.run(spec)
        second = session.run(spec)
        assert first.rows == second.rows
        # The second run is served from the workload-simulation cache.
        assert second.timing["seconds"] < first.timing["seconds"] + 0.5


class TestStressmarkRuns:
    def test_stressmark_result_payload(self, session):
        spec = tiny("stressmark")
        result = session.run(spec)
        assert len(result.rows) == 1
        assert result.knobs["Loop Size"] > 0
        assert result.ga["evaluations"] > 0
        assert len(result.ga["best_fitness_per_generation"]) == 2
        assert set(result.ser) >= {"qs", "core", "l2"}

    def test_ga_seed_override_changes_search(self, session):
        baseline = session.stressmark_result(tiny("stressmark"))
        reseeded = session.stressmark_result(tiny("stressmark", seed=99))
        assert baseline is not reseeded  # distinct cache entries

    def test_rich_accessor_matches_run(self, session):
        spec = tiny("stressmark")
        rich = session.stressmark_result(spec)
        result = session.run(spec)
        assert result.ga["best_fitness"] == pytest.approx(rich.fitness)

    def test_kind_mismatch_rejected(self, session):
        with pytest.raises(SpecError, match="expected a stressmark spec"):
            session.stressmark_result(tiny("simulate"))
        with pytest.raises(SpecError, match="expected a simulate spec"):
            session.workload_report_set(tiny("stressmark"))


class TestSweepRuns:
    def test_sweep_concatenates_children(self, session):
        sweep = RunSpec(
            kind="sweep",
            name="fr",
            base=tiny("stressmark"),
            axes={"fault_rates": ("unit", "rhc")},
        )
        result = session.run(sweep)
        assert len(result.children) == 2
        assert len(result.rows) == 2
        assert result.children[0].spec.fault_rates == "unit"
        assert result.children[1].spec.fault_rates == "rhc"
        assert result.provenance["runs"] == 2

    def test_sweep_children_share_cached_searches(self, session):
        # The unit/rhc stressmarks ran in the previous test via this module's
        # shared session; re-running the sweep must be nearly free.
        sweep = RunSpec(
            kind="sweep",
            base=tiny("stressmark"),
            axes={"fault_rates": ("unit", "rhc")},
        )
        result = session.run(sweep)
        assert result.timing["seconds"] < 1.0


class TestSessionPinning:
    def test_wrapped_context_is_reused(self, tiny_scale, shared_context):
        session = Session(context=shared_context)
        assert session.context_for(RunSpec(kind="simulate")) is shared_context
        # Pinned scale wins over whatever the spec asks for.
        assert session.resolve_scale(RunSpec(kind="simulate", scale="paper")) is tiny_scale

    def test_pinned_jobs_win_over_spec(self):
        with Session(jobs=1) as session:
            assert session.resolve_jobs(RunSpec(kind="simulate", jobs=4)) == 1

    def test_spec_jobs_used_when_unpinned(self):
        with Session() as session:
            assert session.resolve_jobs(RunSpec(kind="simulate", jobs=3)) == 3

    def test_close_releases_owned_contexts(self):
        session = Session()
        context = session.context_for(RunSpec(kind="simulate"))
        assert context is session.context_for(RunSpec(kind="simulate"))
        session.close()
        assert session._contexts == {}

    def test_close_is_idempotent(self):
        session = Session()
        session.context_for(RunSpec(kind="simulate"))
        assert not session.closed
        session.close()
        assert session.closed
        session.close()  # second close (shutdown racing a signal handler) is a no-op

    def test_closed_session_refuses_new_work(self):
        session = Session()
        session.close()
        with pytest.raises(RuntimeError, match="session is closed"):
            session.run(RunSpec(kind="simulate", scale_overrides={"workload_instructions": 1500}))
        with pytest.raises(RuntimeError, match="session is closed"):
            session.context_for(RunSpec(kind="simulate"))

    def test_context_manager_closes_once(self):
        with Session() as session:
            session.context_for(RunSpec(kind="simulate"))
            session.close()  # explicit close inside the with block
        assert session.closed

    def test_backend_participates_in_context_cache_key(self):
        with Session(jobs=1) as session:
            default = session.context_for(RunSpec(kind="simulate"))
            serial = session.context_for(RunSpec(kind="simulate", backend="serial"))
            assert serial is not default
            assert serial is session.context_for(RunSpec(kind="simulate", backend="serial"))


class TestPresets:
    def test_every_preset_validates(self):
        for name in preset_names():
            preset_spec(name).validate()

    def test_comparison_presets_have_both_children(self):
        for name in ("figure3", "figure4", "figure6", "figure7", "table3"):
            spec = preset_spec(name)
            assert children_of_kind(spec, "stressmark")
            assert children_of_kind(spec, "simulate")

    def test_unknown_preset_suggests(self):
        with pytest.raises(KeyError, match="did you mean 'figure3'"):
            preset_spec("figure33")

    def test_figure9_sweeps_configs(self):
        children = preset_spec("figure9").expand()
        assert [child.config for child in children] == ["baseline", "config_a"]
