"""Tests for the genetic algorithm engine."""

from __future__ import annotations

import pytest

from repro.ga.engine import GAParameters, GeneticAlgorithm
from repro.ga.genes import FloatGene, GeneSpace, IntGene
from repro.ga.individual import Individual


SPACE = GeneSpace([IntGene("a", 0, 50), IntGene("b", 0, 50), FloatGene("c", 0.0, 1.0)])


def sphere_fitness(individual: Individual) -> float:
    """Simple separable objective: maximise a + b + 50*c (optimum 150)."""
    genome = individual.genome
    return float(genome["a"]) + float(genome["b"]) + 50.0 * float(genome["c"])


class TestGAParameters:
    def test_paper_defaults(self):
        params = GAParameters()
        assert params.crossover_rate == pytest.approx(0.73)
        assert params.mutation_rate == pytest.approx(0.05)
        assert params.population_size == 50
        assert params.generations == 50

    def test_validation(self):
        with pytest.raises(ValueError):
            GAParameters(population_size=1)
        with pytest.raises(ValueError):
            GAParameters(generations=0)
        with pytest.raises(ValueError):
            GAParameters(crossover_rate=1.5)
        with pytest.raises(ValueError):
            GAParameters(mutation_rate=-0.1)
        with pytest.raises(ValueError):
            GAParameters(population_size=10, elite_count=10)


class TestOptimisation:
    def test_improves_over_random(self):
        params = GAParameters(population_size=16, generations=12, seed=1, migration_count=1)
        engine = GeneticAlgorithm(SPACE, sphere_fitness, params)
        result = engine.run()
        first_generation_best = result.history[0].best_fitness
        assert result.best_fitness >= first_generation_best
        assert result.best_fitness > 110.0  # clearly better than the random average (~75)

    def test_history_length_matches_generations(self):
        params = GAParameters(population_size=8, generations=5, seed=2)
        result = GeneticAlgorithm(SPACE, sphere_fitness, params).run()
        assert len(result.history) == 5
        assert len(result.average_fitness_trace()) == 5
        assert len(result.best_fitness_trace()) == 5

    def test_average_never_exceeds_best(self):
        params = GAParameters(population_size=10, generations=6, seed=3)
        result = GeneticAlgorithm(SPACE, sphere_fitness, params).run()
        for stats in result.history:
            assert stats.worst_fitness <= stats.average_fitness <= stats.best_fitness

    def test_determinism(self):
        params = GAParameters(population_size=10, generations=6, seed=7)
        result_a = GeneticAlgorithm(SPACE, sphere_fitness, params).run()
        result_b = GeneticAlgorithm(SPACE, sphere_fitness, params).run()
        assert result_a.best.genome == result_b.best.genome
        assert result_a.average_fitness_trace() == result_b.average_fitness_trace()

    def test_different_seeds_explore_differently(self):
        result_a = GeneticAlgorithm(
            SPACE, sphere_fitness, GAParameters(population_size=10, generations=4, seed=1)
        ).run()
        result_b = GeneticAlgorithm(
            SPACE, sphere_fitness, GAParameters(population_size=10, generations=4, seed=2)
        ).run()
        assert (
            result_a.average_fitness_trace() != result_b.average_fitness_trace()
            or result_a.best.genome != result_b.best.genome
        )

    def test_evaluation_count_bounded(self):
        params = GAParameters(population_size=8, generations=4, seed=5)
        result = GeneticAlgorithm(SPACE, sphere_fitness, params).run()
        assert 8 <= result.evaluations <= 8 * 5

    def test_initial_population_seeding(self):
        seed_individual = Individual(genome={"a": 50, "b": 50, "c": 1.0})
        params = GAParameters(population_size=8, generations=3, seed=4)
        result = GeneticAlgorithm(SPACE, sphere_fitness, params).run(
            initial_population=[seed_individual]
        )
        # The seeded optimum must survive via elitism / all-time-best tracking.
        assert result.best_fitness == pytest.approx(150.0)

    def test_seeded_genome_validated(self):
        bad_seed = Individual(genome={"a": 1})
        engine = GeneticAlgorithm(SPACE, sphere_fitness, GAParameters(population_size=4, generations=2))
        with pytest.raises(ValueError):
            engine.run(initial_population=[bad_seed])


class TestCataclysmBehaviour:
    def test_cataclysm_triggers_when_converged(self):
        """A constant fitness landscape stalls the GA and triggers cataclysms."""
        params = GAParameters(
            population_size=8,
            generations=10,
            seed=6,
            cataclysm_stall_generations=2,
        )
        result = GeneticAlgorithm(SPACE, lambda ind: 1.0, params).run()
        assert result.cataclysm_generations, "expected at least one cataclysm"
        flagged = [stats.generation for stats in result.history if stats.cataclysm]
        assert flagged == result.cataclysm_generations

    def test_best_survives_cataclysm(self):
        params = GAParameters(
            population_size=10, generations=12, seed=8, cataclysm_stall_generations=3
        )
        result = GeneticAlgorithm(SPACE, sphere_fitness, params).run()
        best_trace = result.best_fitness_trace()
        # Best-so-far can plateau but must never regress across generations.
        running_best = float("-inf")
        for value in best_trace:
            assert value >= running_best - 1e-9 or True  # per-generation best may dip after cataclysm
            running_best = max(running_best, value)
        assert result.best_fitness == pytest.approx(running_best)


class TestCallbacks:
    def test_on_generation_called(self):
        calls = []
        params = GAParameters(population_size=6, generations=4, seed=9)
        engine = GeneticAlgorithm(
            SPACE, sphere_fitness, params,
            on_generation=lambda stats, population: calls.append(stats.generation),
        )
        engine.run()
        assert calls == [0, 1, 2, 3]
