"""Tests for the artifact store and the persistent fitness cache."""

from __future__ import annotations

import pytest

from repro.store import ArtifactStore, PersistentFitnessCache, artifact_key


class TestArtifactKey:
    def test_stable_across_calls(self):
        assert artifact_key("a", 1, 2.5) == artifact_key("a", 1, 2.5)

    def test_distinguishes_parts(self):
        assert artifact_key("a", 1) != artifact_key("a", 2)
        assert artifact_key("a", 1) != artifact_key("b", 1)
        assert artifact_key("a", 1) != artifact_key("a", "1")


class TestArtifactStore:
    def test_put_get_round_trip(self, tmp_path):
        with ArtifactStore(tmp_path / "artifacts.sqlite") as store:
            store.put("k", {"nested": [1, 2, 3]})
            assert store.get("k") == {"nested": [1, 2, 3]}
            assert "k" in store
            assert len(store) == 1
            assert store.keys() == ["k"]

    def test_miss_is_none(self, tmp_path):
        with ArtifactStore(tmp_path / "artifacts.sqlite") as store:
            assert store.get("missing") is None
            assert "missing" not in store

    def test_persists_across_instances(self, tmp_path):
        path = tmp_path / "artifacts.sqlite"
        with ArtifactStore(path) as store:
            store.put("k", (1.5, "payload"))
        with ArtifactStore(path) as reopened:
            assert reopened.get("k") == (1.5, "payload")

    def test_last_write_wins(self, tmp_path):
        with ArtifactStore(tmp_path / "artifacts.sqlite") as store:
            store.put("k", 1)
            store.put("k", 2)
            assert store.get("k") == 2
            assert len(store) == 1


class TestPersistentFitnessCache:
    def test_write_through_and_cross_instance_hit(self, tmp_path):
        path = tmp_path / "fitness.sqlite"
        with PersistentFitnessCache(path, context_digest="ctx") as cache:
            cache.store({"x": 1}, 0.5, {"report": "r"})
        with PersistentFitnessCache(path, context_digest="ctx") as fresh:
            hit = fresh.lookup({"x": 1})
            assert hit == (0.5, {"report": "r"})
            assert fresh.disk_hits == 1
            assert fresh.stats.hits == 1
            # Second lookup is served from the promoted in-memory entry.
            assert fresh.lookup({"x": 1}) == (0.5, {"report": "r"})
            assert fresh.disk_hits == 1

    def test_context_digests_never_alias(self, tmp_path):
        path = tmp_path / "fitness.sqlite"
        with PersistentFitnessCache(path, context_digest="ctx_a") as cache:
            cache.store({"x": 1}, 0.5)
        with PersistentFitnessCache(path, context_digest="ctx_b") as other:
            assert other.lookup({"x": 1}) is None

    def test_payload_isolation(self, tmp_path):
        with PersistentFitnessCache(tmp_path / "fitness.sqlite") as cache:
            cache.store({"x": 1}, 0.5, {"list": "a"})
            _, payload = cache.lookup({"x": 1})
            payload["list"] = "mutated"
            assert cache.lookup({"x": 1})[1] == {"list": "a"}

    def test_max_entries_bounds_memory_not_disk(self, tmp_path):
        with PersistentFitnessCache(tmp_path / "fitness.sqlite", max_entries=1) as cache:
            key_a = cache.store({"x": 1}, 1.0)
            key_b = cache.store({"x": 2}, 2.0)
            # key_a was evicted from memory (FIFO, max_entries=1)...
            assert key_a not in cache
            assert key_b in cache
            # ...but the disk layer still serves it.
            assert cache.lookup({"x": 1}) == (1.0, {})
            assert cache.disk_hits == 1

    def test_shared_store_object_not_closed(self, tmp_path):
        store = ArtifactStore(tmp_path / "fitness.sqlite")
        cache = PersistentFitnessCache(store, context_digest="ctx")
        cache.store({"x": 1}, 0.5)
        cache.close()  # must not close the caller-owned store
        assert store.get(cache.key_for({"x": 1})) == (0.5, {})
        store.close()

    def test_miss_counted_once(self, tmp_path):
        with PersistentFitnessCache(tmp_path / "fitness.sqlite") as cache:
            assert cache.lookup({"x": 1}) is None
            assert cache.stats.misses == 1
            assert cache.stats.hits == 0


class TestGeneratorIntegration:
    def test_stressmark_generator_reuses_disk_cache(self, tmp_path):
        """A second GA run over the same genomes re-simulates nothing."""
        from repro.ga.engine import GAParameters
        from repro.stressmark.generator import StressmarkGenerator
        from repro.uarch.config import baseline_config

        store = ArtifactStore(tmp_path / "fitness.sqlite")
        params = GAParameters(population_size=4, generations=2, seed=9)

        def run():
            generator = StressmarkGenerator(
                config=baseline_config(),
                ga_parameters=params,
                max_instructions=1_200,
                fitness_store=store,
            )
            return generator.generate()

        first = run()
        second = run()
        assert second.knobs == first.knobs
        assert second.fitness == first.fitness
        # Every evaluation of the second run is a (disk-served) cache hit.
        assert second.ga_result.evaluations == 0
        assert second.ga_result.cache_hits == (
            first.ga_result.cache_hits + first.ga_result.cache_misses
        )
        store.close()
