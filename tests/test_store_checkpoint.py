"""Tests for GA checkpointing: save/load plumbing and bit-identical resume."""

from __future__ import annotations

import pytest

from repro.ga.engine import GAParameters, GeneticAlgorithm
from repro.ga.genes import FloatGene, GeneSpace, IntGene
from repro.ga.individual import Individual
from repro.store import (
    CheckpointError,
    CheckpointManager,
    GACheckpoint,
    PersistentFitnessCache,
)

SPACE = GeneSpace([IntGene("x", 0, 100), FloatGene("y", 0.0, 1.0)])


def evaluator(individual: Individual) -> float:
    individual.payload["echo"] = individual.genome["x"]
    return individual.genome["x"] * (1.0 + individual.genome["y"])


def make_checkpoint(**overrides) -> GACheckpoint:
    fields = dict(
        settings_digest="digest",
        next_generation=3,
        rng_state=(1, (2, 3), None),
        population=[Individual(genome={"x": 1, "y": 0.5}, fitness=1.5)],
        best=Individual(genome={"x": 1, "y": 0.5}, fitness=1.5),
        all_time_best=None,
    )
    fields.update(overrides)
    return GACheckpoint(**fields)


class TestCheckpointManager:
    def test_save_load_round_trip(self, tmp_path):
        manager = CheckpointManager(tmp_path / "nested" / "ga.ckpt")
        assert not manager.exists()
        assert manager.load() is None
        manager.save(make_checkpoint())
        assert manager.exists()
        loaded = manager.load()
        assert loaded.next_generation == 3
        assert loaded.population[0].genome == {"x": 1, "y": 0.5}

    def test_clear(self, tmp_path):
        manager = CheckpointManager(tmp_path / "ga.ckpt")
        manager.save(make_checkpoint())
        manager.clear()
        assert not manager.exists()
        manager.clear()  # idempotent

    def test_schema_mismatch_raises(self, tmp_path):
        manager = CheckpointManager(tmp_path / "ga.ckpt")
        manager.save(make_checkpoint(schema_version=99))
        with pytest.raises(CheckpointError, match="schema 99"):
            manager.load()

    def test_corrupt_file_raises(self, tmp_path):
        manager = CheckpointManager(tmp_path / "ga.ckpt")
        manager.path.write_bytes(b"not a pickle")
        with pytest.raises(CheckpointError, match="cannot read"):
            manager.load()

    def test_no_tmp_file_left_behind(self, tmp_path):
        manager = CheckpointManager(tmp_path / "ga.ckpt")
        manager.save(make_checkpoint())
        assert list(tmp_path.iterdir()) == [manager.path]


class _InterruptAt(Exception):
    pass


def run_ga(tmp_path, label, checkpoint=None, interrupt_generation=None,
           parameters=None):
    """One engine run with a persistent cache under ``tmp_path/<label>``."""
    params = parameters or GAParameters(population_size=10, generations=8, seed=42)

    def bomb(stats, population):
        if interrupt_generation is not None and stats.generation == interrupt_generation:
            raise _InterruptAt

    cache = PersistentFitnessCache(tmp_path / f"{label}.sqlite")
    engine = GeneticAlgorithm(
        SPACE, evaluator, params,
        fitness_cache=cache,
        on_generation=bomb if interrupt_generation is not None else None,
    )
    try:
        return engine.run(checkpoint=checkpoint)
    finally:
        cache.close()


class TestResume:
    def test_interrupted_run_resumes_bit_identically(self, tmp_path):
        reference = run_ga(tmp_path, "ref")

        manager = CheckpointManager(tmp_path / "ga.ckpt")
        with pytest.raises(_InterruptAt):
            run_ga(tmp_path, "int", checkpoint=manager, interrupt_generation=3)
        assert manager.exists()

        resumed = run_ga(tmp_path, "int", checkpoint=manager)
        assert resumed.best.genome == reference.best.genome
        assert resumed.best.fitness == reference.best.fitness
        assert [s.__dict__ for s in resumed.history] == [s.__dict__ for s in reference.history]
        assert resumed.cataclysm_generations == reference.cataclysm_generations
        # The re-run of the in-flight generation is served by the persistent
        # cache, so total lookups are conserved even though the split between
        # evaluations and hits shifts.
        assert resumed.evaluations <= reference.evaluations
        assert (resumed.evaluations + resumed.cache_hits
                == reference.evaluations + reference.cache_hits)

    def test_resume_after_final_generation_checkpoint(self, tmp_path):
        """Interrupting after the last generation's checkpoint still finishes."""
        reference = run_ga(tmp_path, "ref")
        manager = CheckpointManager(tmp_path / "ga.ckpt")
        with pytest.raises(_InterruptAt):
            # Generation 7 is the last; the interrupt fires before its
            # checkpoint, so resume replays the final generation and the tail.
            run_ga(tmp_path, "int", checkpoint=manager, interrupt_generation=7)
        loaded = manager.load()
        assert loaded is not None and loaded.next_generation == 7
        resumed = run_ga(tmp_path, "int", checkpoint=manager)
        assert resumed.best.genome == reference.best.genome
        assert len(resumed.history) == len(reference.history)

    def test_checkpoint_written_every_generation(self, tmp_path):
        manager = CheckpointManager(tmp_path / "ga.ckpt")
        seen = []

        original_save = manager.save

        def spy(checkpoint):
            seen.append(checkpoint.next_generation)
            original_save(checkpoint)

        manager.save = spy  # type: ignore[method-assign]
        run_ga(tmp_path, "full", checkpoint=manager)
        assert seen == list(range(1, 9))

    def test_settings_mismatch_raises(self, tmp_path):
        manager = CheckpointManager(tmp_path / "ga.ckpt")
        with pytest.raises(_InterruptAt):
            run_ga(tmp_path, "int", checkpoint=manager, interrupt_generation=2)
        other = GAParameters(population_size=10, generations=8, seed=43)
        with pytest.raises(CheckpointError, match="different GA parameters"):
            run_ga(tmp_path, "int", checkpoint=manager, parameters=other)

    def test_fresh_run_without_checkpoint_unaffected(self, tmp_path):
        """A run given no checkpoint manager behaves exactly as before."""
        a = run_ga(tmp_path, "a")
        b = run_ga(tmp_path, "b")
        assert a.best.genome == b.best.genome
        assert [s.__dict__ for s in a.history] == [s.__dict__ for s in b.history]
