"""Tests for the hybrid (tournament) branch predictor."""

from __future__ import annotations

import pytest

from repro.branch.predictors import (
    BimodalPredictor,
    HybridPredictor,
    LocalHistoryPredictor,
    SaturatingCounter,
)
from repro.utils.rng import DeterministicRng


class TestSaturatingCounter:
    def test_initial_midpoint(self):
        counter = SaturatingCounter(bits=2)
        assert counter.value == 2

    def test_saturates_high(self):
        counter = SaturatingCounter(bits=2)
        for _ in range(10):
            counter.increment()
        assert counter.value == 3

    def test_saturates_low(self):
        counter = SaturatingCounter(bits=2)
        for _ in range(10):
            counter.decrement()
        assert counter.value == 0

    def test_predict_threshold(self):
        counter = SaturatingCounter(bits=2, initial=2)
        assert counter.predict_taken
        counter.decrement()
        assert not counter.predict_taken

    def test_update_direction(self):
        counter = SaturatingCounter(bits=2, initial=1)
        counter.update(True)
        assert counter.value == 2
        counter.update(False)
        assert counter.value == 1

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            SaturatingCounter(bits=0)


class TestComponents:
    def test_bimodal_learns_always_taken(self):
        predictor = BimodalPredictor(entries=256)
        for _ in range(20):
            predictor.update(pc=17, taken=True)
        assert predictor.predict(pc=17)

    def test_bimodal_power_of_two(self):
        with pytest.raises(ValueError):
            BimodalPredictor(entries=100)

    def test_local_learns_alternating_pattern(self):
        predictor = LocalHistoryPredictor(history_entries=64, history_bits=6)
        outcomes = [True, False] * 200
        correct = 0
        for outcome in outcomes:
            if predictor.predict(pc=5) == outcome:
                correct += 1
            predictor.update(pc=5, taken=outcome)
        # After warm-up the local history recognises the period-2 pattern.
        assert correct / len(outcomes) > 0.8

    def test_local_power_of_two(self):
        with pytest.raises(ValueError):
            LocalHistoryPredictor(history_entries=100)


class TestHybridPredictor:
    def test_learns_biased_branch(self):
        predictor = HybridPredictor()
        mispredictions = 0
        for _ in range(500):
            mispredictions += predictor.update(pc=3, taken=True)
        assert mispredictions < 10

    def test_random_branch_mispredicts_often(self):
        predictor = HybridPredictor()
        rng = DeterministicRng(0)
        mispredictions = 0
        trials = 2000
        for _ in range(trials):
            mispredictions += predictor.update(pc=3, taken=rng.coin(0.5))
        assert mispredictions / trials > 0.3

    def test_loop_branch_highly_predictable(self):
        predictor = HybridPredictor()
        mispredictions = 0
        # A loop branch: taken 99 times, not taken once, repeatedly.
        for _ in range(20):
            for index in range(100):
                taken = index != 99
                mispredictions += predictor.update(pc=8, taken=taken)
        assert mispredictions / 2000 < 0.1

    def test_statistics(self):
        predictor = HybridPredictor()
        for _ in range(50):
            predictor.update(pc=1, taken=True)
        assert predictor.stats.predictions == 50
        assert 0.0 <= predictor.misprediction_rate <= 1.0

    def test_distinguishes_branches(self):
        predictor = HybridPredictor()
        for _ in range(200):
            predictor.update(pc=1, taken=True)
            predictor.update(pc=2, taken=False)
        assert predictor.predict(pc=1)
        assert not predictor.predict(pc=2)

    def test_choice_entries_validation(self):
        with pytest.raises(ValueError):
            HybridPredictor(choice_entries=1000)

    def test_empty_rate_is_zero(self):
        assert HybridPredictor().misprediction_rate == 0.0
