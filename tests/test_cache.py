"""Tests for the set-associative writeback cache model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.cache import Cache, CacheConfig


def small_cache(associativity: int = 2, size: int = 1024, line: int = 64) -> Cache:
    return Cache(CacheConfig(name="test", size_bytes=size, associativity=associativity,
                             line_bytes=line, hit_latency=3))


class TestCacheConfig:
    def test_geometry(self):
        config = CacheConfig(name="c", size_bytes=64 * 1024, associativity=2, line_bytes=64, hit_latency=3)
        assert config.num_sets == 512
        assert config.num_lines == 1024
        assert config.words_per_line == 8
        assert config.total_bits == 64 * 1024 * 8

    def test_direct_mapped(self):
        config = CacheConfig(name="c", size_bytes=1024 * 1024, associativity=1, line_bytes=64, hit_latency=7)
        assert config.num_sets == config.num_lines == 16384

    def test_validation_size_multiple(self):
        with pytest.raises(ValueError):
            CacheConfig(name="c", size_bytes=1000, associativity=3, line_bytes=64, hit_latency=1)

    def test_validation_line_word_multiple(self):
        with pytest.raises(ValueError):
            CacheConfig(name="c", size_bytes=1024, associativity=1, line_bytes=60, hit_latency=1)

    def test_validation_positive(self):
        with pytest.raises(ValueError):
            CacheConfig(name="c", size_bytes=0, associativity=1, line_bytes=64, hit_latency=1)


class TestHitsAndMisses:
    def test_first_access_misses(self):
        cache = small_cache()
        assert not cache.access(0, is_write=False, cycle=1).hit
        assert cache.stats.misses == 1

    def test_second_access_hits(self):
        cache = small_cache()
        cache.access(0, is_write=False, cycle=1)
        assert cache.access(0, is_write=False, cycle=2).hit

    def test_same_line_different_word_hits(self):
        cache = small_cache()
        cache.access(0, is_write=False, cycle=1)
        assert cache.access(8, is_write=False, cycle=2).hit

    def test_different_line_misses(self):
        cache = small_cache()
        cache.access(0, is_write=False, cycle=1)
        assert not cache.access(64, is_write=False, cycle=2).hit

    def test_miss_rate(self):
        cache = small_cache()
        cache.access(0, is_write=False, cycle=1)
        cache.access(0, is_write=False, cycle=2)
        assert cache.stats.miss_rate == pytest.approx(0.5)

    def test_negative_like_aliasing_not_possible(self):
        cache = small_cache()
        result = cache.access(0, is_write=True, cycle=1)
        assert not result.hit and not result.evicted_dirty


class TestLruEviction:
    def test_lru_victim_selected(self):
        # 2-way, 1024 B, 64 B lines -> 8 sets; addresses 0, 8*64, 16*64 map to set 0.
        cache = small_cache(associativity=2, size=1024)
        cache.access(0, is_write=False, cycle=1)
        cache.access(8 * 64, is_write=False, cycle=2)
        cache.access(0, is_write=False, cycle=3)          # refresh line 0
        cache.access(16 * 64, is_write=False, cycle=4)    # evicts line 8*64 (LRU)
        assert cache.access(0, is_write=False, cycle=5).hit
        assert not cache.access(8 * 64, is_write=False, cycle=6).hit

    def test_eviction_reports_dirty_victim(self):
        cache = small_cache(associativity=1, size=512)
        cache.access(0, is_write=True, cycle=1)
        result = cache.access(8 * 64, is_write=False, cycle=2)  # same set, evicts dirty line 0
        assert result.evicted_dirty
        assert result.evicted_address == 0
        assert result.evicted_ace

    def test_clean_eviction_not_dirty(self):
        cache = small_cache(associativity=1, size=512)
        cache.access(0, is_write=False, cycle=1)
        result = cache.access(8 * 64, is_write=False, cycle=2)
        assert not result.evicted_dirty

    def test_unace_dirty_eviction_flagged(self):
        cache = small_cache(associativity=1, size=512)
        cache.access(0, is_write=True, cycle=1, ace=False)
        result = cache.access(8 * 64, is_write=False, cycle=2)
        assert result.evicted_dirty
        assert not result.evicted_ace

    def test_resident_line_count_bounded(self):
        cache = small_cache(associativity=2, size=1024)
        for index in range(100):
            cache.access(index * 64, is_write=False, cycle=index)
        assert cache.resident_line_count() <= cache.config.num_lines


class TestAvf:
    def test_written_then_resident_line_is_ace(self):
        cache = small_cache(size=512, associativity=1)
        cache.access(0, is_write=True, cycle=0)
        cache.finalize(cycle=1000)
        # One 64-bit word of one line ACE for ~1000 cycles.
        expected = 64 * 1000 / (cache.config.total_bits * 1000)
        assert cache.avf(1000) == pytest.approx(expected, rel=1e-6)

    def test_untouched_cache_zero_avf(self):
        cache = small_cache()
        cache.finalize(cycle=100)
        assert cache.avf(100) == 0.0

    def test_avf_bounded(self):
        cache = small_cache(size=512, associativity=1)
        for index in range(64):
            cache.access(index * 8, is_write=True, cycle=index)
        cache.finalize(cycle=64)
        assert 0.0 <= cache.avf(64) <= 1.0

    def test_zero_cycles(self):
        assert small_cache().avf(0) == 0.0


class TestWarmLine:
    def test_warm_dirty_line_fully_ace(self):
        cache = small_cache(size=512, associativity=1)
        cache.warm_line(0, cycle=0, dirty=True, ace=True)
        cache.finalize(cycle=100)
        line_bits = 64 * 8
        assert cache.lifetime.ace_bit_cycles() == pytest.approx(line_bits * 100)

    def test_warm_clean_line_not_ace_without_reads(self):
        cache = small_cache(size=512, associativity=1)
        cache.warm_line(0, cycle=0, dirty=False, ace=True)
        cache.finalize(cycle=100)
        assert cache.lifetime.ace_bit_cycles() == 0.0

    def test_warm_partial_word_fraction(self):
        cache = small_cache(size=512, associativity=1)
        cache.warm_line(0, cycle=0, dirty=True, ace=True, word_fraction=0.5)
        cache.finalize(cycle=10)
        assert cache.lifetime.ace_bit_cycles() == pytest.approx(4 * 64 * 10)

    def test_warm_line_makes_subsequent_access_hit(self):
        cache = small_cache()
        cache.warm_line(0, cycle=0)
        assert cache.access(0, is_write=False, cycle=5).hit

    def test_warm_line_word_fraction_validation(self):
        with pytest.raises(ValueError):
            small_cache().warm_line(0, word_fraction=2.0)

    def test_warm_respects_capacity(self):
        cache = small_cache(associativity=1, size=512)
        for index in range(32):
            cache.warm_line(index * 64, cycle=0)
        assert cache.resident_line_count() <= cache.config.num_lines


class TestWriteback:
    def test_writeback_installs_dirty_line(self):
        cache = small_cache()
        cache.writeback(128, cycle=3, ace=True)
        assert cache.access(128, is_write=False, cycle=4).hit


class TestCacheProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        addresses=st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=150),
        writes=st.lists(st.booleans(), min_size=1, max_size=150),
    )
    def test_invariants_under_random_access(self, addresses, writes):
        cache = small_cache()
        cycle = 0
        for address, is_write in zip(addresses, writes):
            cycle += 1
            cache.access(address, is_write=is_write, cycle=cycle)
        cache.finalize(cycle + 1)
        stats = cache.stats
        assert stats.hits + stats.misses == stats.accesses
        assert cache.resident_line_count() <= cache.config.num_lines
        assert 0.0 <= cache.avf(cycle + 1) <= 1.0


class TestAccessMany:
    """Bulk access must equal the per-element loop, tuple for tuple."""

    def _mixed_addresses(self):
        return [index * 40 % (1 << 14) for index in range(200)]

    def test_bulk_equals_loop_with_per_element_cycles(self):
        addresses = self._mixed_addresses()
        cycles = [10 + index for index in range(len(addresses))]
        bulk = small_cache()
        loop = small_cache()
        got = bulk.access_many(addresses, False, cycles)
        want = [loop.access_parts(a, False, c) for a, c in zip(addresses, cycles)]
        assert got == want
        bulk.finalize(1000)
        loop.finalize(1000)
        assert bulk.lifetime.ace_bit_cycles() == loop.lifetime.ace_bit_cycles()
        assert bulk.stats == loop.stats

    def test_bulk_scalar_cycle_and_writes(self):
        addresses = self._mixed_addresses()
        bulk = small_cache()
        loop = small_cache()
        got = bulk.access_many(addresses, True, 7, ace=False)
        want = [loop.access_parts(a, True, 7, ace=False) for a in addresses]
        assert got == want
        assert bulk.stats == loop.stats

    def test_bulk_accepts_numpy_columns(self):
        numpy = pytest.importorskip("numpy")
        addresses = numpy.asarray(self._mixed_addresses(), dtype=numpy.int64)
        cycles = numpy.arange(10, 10 + len(addresses), dtype=numpy.int64)
        bulk = small_cache()
        loop = small_cache()
        got = bulk.access_many(addresses, False, cycles)
        want = [loop.access_parts(int(a), False, int(c)) for a, c in zip(addresses, cycles)]
        assert got == want
