"""Property-based tests: simulator invariants under randomly generated programs."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.isa import (
    FixedPattern,
    OperandWidth,
    Program,
    RandomPattern,
    StridedPattern,
    make_alu,
    make_branch,
    make_load,
    make_mul,
    make_nop,
    make_store,
)
from repro.memory.cache import CacheConfig
from repro.memory.tlb import TlbConfig
from repro.uarch.config import MachineConfig
from repro.uarch.pipeline import OutOfOrderCore
from repro.uarch.structures import StructureName


CONFIG = MachineConfig(
    name="property",
    iq_entries=8,
    rob_entries=24,
    lq_entries=8,
    sq_entries=8,
    rename_registers=64,
    dl1=CacheConfig(name="dl1", size_bytes=4 * 1024, associativity=2, line_bytes=64, hit_latency=3),
    il1=CacheConfig(name="il1", size_bytes=4 * 1024, associativity=2, line_bytes=64, hit_latency=1),
    l2=CacheConfig(name="l2", size_bytes=32 * 1024, associativity=1, line_bytes=64, hit_latency=7),
    dtlb=TlbConfig(entries=16, page_bytes=4096),
    memory_latency=100,
)


@st.composite
def instruction_strategy(draw):
    """Generate one random, valid instruction."""
    kind = draw(st.sampled_from(["alu", "mul", "load", "store", "branch", "nop"]))
    dest = draw(st.integers(min_value=3, max_value=31))
    src = draw(st.integers(min_value=1, max_value=31))
    width = draw(st.sampled_from([OperandWidth.WORD32, OperandWidth.WORD64]))
    ace = draw(st.booleans())
    pattern_kind = draw(st.sampled_from(["fixed", "strided", "random"]))
    if pattern_kind == "fixed":
        pattern = FixedPattern(address=draw(st.integers(min_value=0, max_value=1 << 16)))
    elif pattern_kind == "strided":
        pattern = StridedPattern(
            base=0,
            stride=draw(st.sampled_from([8, 64, 4096])),
            region=draw(st.sampled_from([4096, 64 * 1024, 512 * 1024])),
        )
    else:
        pattern = RandomPattern(base=0, region=draw(st.sampled_from([4096, 64 * 1024])))

    if kind == "alu":
        return make_alu(dest, [src], width=width, ace=ace)
    if kind == "mul":
        return make_mul(dest, [src], width=width, ace=ace)
    if kind == "load":
        return make_load(dest, pattern, srcs=[src], width=width, ace=ace)
    if kind == "store":
        return make_store(pattern, srcs=[src], width=width, ace=ace)
    if kind == "branch":
        return make_branch(srcs=[src], taken_probability=draw(st.floats(0.0, 1.0)))
    return make_nop()


@st.composite
def program_strategy(draw):
    body = draw(st.lists(instruction_strategy(), min_size=4, max_size=40))
    return Program(name="random_property_program", body=body, iterations=10**9)


class TestSimulatorInvariants:
    @settings(max_examples=15, deadline=None)
    @given(program=program_strategy(), seed=st.integers(min_value=0, max_value=1000))
    def test_results_are_well_formed(self, program, seed):
        result = OutOfOrderCore(CONFIG, seed=seed).run(program, max_instructions=300)

        # Every committed instruction takes at least one cycle slot.
        assert result.stats.total_cycles >= result.stats.committed_instructions / CONFIG.commit_width
        assert result.stats.committed_instructions == 300
        assert 0.0 < result.stats.ipc <= CONFIG.commit_width

        for structure in result.accumulators:
            avf = result.avf(structure)
            occupancy = result.occupancy(structure)
            assert 0.0 <= avf <= 1.0
            assert 0.0 <= occupancy <= 1.0
            if structure.is_core:
                # ACE bits are a subset of occupied bits for core structures.
                assert avf <= occupancy + 1e-9

        assert 0.0 <= result.stats.branch_misprediction_rate <= 1.0
        assert 0.0 <= result.stats.dl1_miss_rate <= 1.0
        assert result.stats.committed_ace_instructions <= result.stats.committed_instructions

    @settings(max_examples=8, deadline=None)
    @given(program=program_strategy())
    def test_deterministic_given_seed(self, program):
        first = OutOfOrderCore(CONFIG, seed=9).run(program, max_instructions=200)
        second = OutOfOrderCore(CONFIG, seed=9).run(program, max_instructions=200)
        assert first.stats.total_cycles == second.stats.total_cycles
        assert first.avf_by_structure() == second.avf_by_structure()

    @settings(max_examples=8, deadline=None)
    @given(program=program_strategy())
    def test_unace_program_has_zero_core_avf(self, program):
        """Forcing every instruction un-ACE zeroes core AVF but not occupancy."""
        from dataclasses import replace

        unace_body = [replace(instruction, ace=False) for instruction in program.body]
        unace_program = Program(name="unace", body=unace_body, iterations=10**9)
        result = OutOfOrderCore(CONFIG, seed=1).run(unace_program, max_instructions=200)
        for structure in result.accumulators:
            if structure.is_core and structure is not StructureName.RF:
                assert result.avf(structure) == 0.0
