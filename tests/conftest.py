"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.experiments.runner import ExperimentContext, ExperimentScale
from repro.isa import (
    BranchBehavior,
    LineCoverPattern,
    PointerChasePattern,
    Program,
    WarmupRegion,
    make_alu,
    make_branch,
    make_load,
    make_store,
)
from repro.memory.cache import CacheConfig
from repro.memory.tlb import TlbConfig
from repro.uarch.config import MachineConfig, baseline_config, config_a


@pytest.fixture(scope="session")
def baseline() -> MachineConfig:
    """The paper's baseline configuration (Table I)."""
    return baseline_config()


@pytest.fixture(scope="session")
def alternate() -> MachineConfig:
    """The paper's Configuration A (Table II)."""
    return config_a()


@pytest.fixture(scope="session")
def small_config() -> MachineConfig:
    """A scaled-down configuration for fast pipeline unit tests.

    Small caches keep functional warm-up and lifetime tracking cheap while
    preserving every structural behaviour of the model.
    """
    return MachineConfig(
        name="small",
        iq_entries=8,
        rob_entries=24,
        lq_entries=8,
        sq_entries=8,
        rename_registers=64,
        dl1=CacheConfig(name="dl1", size_bytes=4 * 1024, associativity=2, line_bytes=64, hit_latency=3),
        il1=CacheConfig(name="il1", size_bytes=4 * 1024, associativity=2, line_bytes=64, hit_latency=1),
        l2=CacheConfig(name="l2", size_bytes=32 * 1024, associativity=1, line_bytes=64, hit_latency=7),
        dtlb=TlbConfig(entries=16, page_bytes=4 * 1024),
        memory_latency=100,
    )


@pytest.fixture(scope="session")
def tiny_scale() -> ExperimentScale:
    """Very small experiment scale used by integration tests."""
    return ExperimentScale(
        name="tiny",
        workload_instructions=1_500,
        stressmark_instructions=2_500,
        ga_population=4,
        ga_generations=3,
    )


@pytest.fixture(scope="session")
def shared_context(tiny_scale: ExperimentScale) -> ExperimentContext:
    """Session-wide experiment context so figure tests share cached runs."""
    return ExperimentContext(tiny_scale)


def build_stressmark_like_program(config: MachineConfig, loop_loads: int = 6, loop_stores: int = 6) -> Program:
    """A small, hand-built stressmark-shaped program used by pipeline tests."""
    region = config.dtlb.reach_bytes
    line = config.dl1.line_bytes
    body = [
        make_load(1, PointerChasePattern(base=0, stride=line, region=region), srcs=[1], label="chase"),
        make_alu(2, [2], label="index"),
    ]
    slots = loop_loads + loop_stores
    for index in range(loop_loads):
        body.append(
            make_load(
                3 + index,
                LineCoverPattern(base=0, line_bytes=line, region=region, slots=slots, slot=index,
                                 iteration_offset=-1),
                srcs=[2],
                label="cover_load",
            )
        )
    for index in range(loop_stores):
        body.append(
            make_store(
                LineCoverPattern(base=0, line_bytes=line, region=region, slots=slots,
                                 slot=loop_loads + index, iteration_offset=-1),
                srcs=[3 + (index % loop_loads), 2],
                label="cover_store",
            )
        )
    branch_index = len(body)
    body.append(make_branch(srcs=[2], label="loop"))
    return Program(
        name="test_stressmark_like",
        body=body,
        iterations=10**9,
        branch_behaviors={branch_index: BranchBehavior.LOOP_CLOSING},
        warmup_regions=[WarmupRegion(base=0, size_bytes=region, dirty=True, ace=True, recurrent=True)],
    )


@pytest.fixture(scope="session")
def stressmark_like_program(small_config: MachineConfig) -> Program:
    """Stressmark-shaped program sized for the small test configuration."""
    return build_stressmark_like_program(small_config)
