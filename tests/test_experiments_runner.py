"""Tests for experiment scales and the caching experiment context."""

from __future__ import annotations

import pytest

from repro.experiments.runner import ExperimentContext, ExperimentScale
from repro.uarch.config import baseline_config
from repro.uarch.faultrates import rhc_fault_rates, unit_fault_rates
from repro.workloads.profiles import WorkloadSuite
from repro.workloads.suite import mibench_profiles, profile_by_name


class TestExperimentScale:
    def test_quick_preset(self):
        scale = ExperimentScale.quick()
        assert scale.workload_instructions < 10_000
        assert scale.ga_population <= 10

    def test_default_preset_larger_than_quick(self):
        assert ExperimentScale.default().workload_instructions > ExperimentScale.quick().workload_instructions

    def test_paper_preset_matches_paper_numbers(self):
        scale = ExperimentScale.paper()
        assert scale.workload_instructions == 100_000_000
        assert scale.ga_population == 50
        assert scale.ga_generations == 50

    def test_ga_parameters_use_paper_rates(self):
        params = ExperimentScale.quick().ga_parameters()
        assert params.crossover_rate == pytest.approx(0.73)
        assert params.mutation_rate == pytest.approx(0.05)
        assert params.population_size == ExperimentScale.quick().ga_population


class TestExperimentContext:
    def test_workload_simulations_cached_across_fault_models(self, tiny_scale):
        context = ExperimentContext(tiny_scale)
        profile = profile_by_name("crc32_proxy")
        config = baseline_config()
        first = context.run_workload(profile, config, unit_fault_rates())
        second = context.run_workload(profile, config, rhc_fault_rates())
        # The underlying simulation is shared: AVF identical, SER re-weighted.
        for structure in first.structure_avf:
            assert first.structure_avf[structure] == pytest.approx(second.structure_avf[structure])
        assert second.core_ser <= first.core_ser

    def test_workload_reports_selected_profiles(self, shared_context):
        reports = shared_context.workload_reports(profiles=mibench_profiles()[:3])
        assert len(reports.reports) >= 3
        assert "basicmath_proxy" in reports.reports

    def test_by_suite_filter(self, shared_context):
        reports = shared_context.workload_reports(profiles=mibench_profiles()[:3])
        mibench_only = reports.by_suite(WorkloadSuite.MIBENCH)
        assert set(mibench_only) <= set(reports.reports)
        assert mibench_only

    def test_best_by(self, shared_context):
        reports = shared_context.workload_reports(profiles=mibench_profiles()[:3])
        name, report = reports.best_by(lambda r: r.core_ser)
        assert report.core_ser == max(r.core_ser for r in reports.reports.values())
        assert name in reports.reports

    def test_stressmark_cached(self, shared_context):
        first = shared_context.stressmark()
        second = shared_context.stressmark()
        assert first is second

    def test_clear_drops_cache(self, tiny_scale):
        context = ExperimentContext(tiny_scale)
        profile = profile_by_name("crc32_proxy")
        context.run_workload(profile, baseline_config())
        context.clear()
        assert not context._workload_cache
        assert not context._stressmark_cache
