"""Tests for the Biswas-style lifetime ACE analysis."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.memory.lifetime import AceEvent, LifetimeTracker


class TestIntervalClassification:
    def test_fill_to_read_is_ace(self):
        tracker = LifetimeTracker()
        tracker.record_fill(0, 0, cycle=0)
        tracker.record_read(0, 0, cycle=100, ace=True)
        assert tracker.ace_word_cycles == 100

    def test_fill_to_evict_is_unace(self):
        tracker = LifetimeTracker()
        tracker.record_fill(0, 0, cycle=0)
        tracker.record_evict(0, 0, cycle=100)
        assert tracker.ace_word_cycles == 0

    def test_read_to_read_is_ace(self):
        tracker = LifetimeTracker()
        tracker.record_fill(0, 0, cycle=0)
        tracker.record_read(0, 0, cycle=10, ace=True)
        tracker.record_read(0, 0, cycle=50, ace=True)
        assert tracker.ace_word_cycles == 50

    def test_read_to_evict_is_unace(self):
        tracker = LifetimeTracker()
        tracker.record_fill(0, 0, cycle=0)
        tracker.record_read(0, 0, cycle=10, ace=True)
        tracker.record_evict(0, 0, cycle=100)
        assert tracker.ace_word_cycles == 10

    def test_write_to_read_is_ace(self):
        tracker = LifetimeTracker()
        tracker.record_write(0, 0, cycle=0, ace=True)
        tracker.record_read(0, 0, cycle=30, ace=True)
        assert tracker.ace_word_cycles == 30

    def test_write_to_evict_is_ace_when_dirty_data_is_ace(self):
        tracker = LifetimeTracker()
        tracker.record_write(0, 0, cycle=0, ace=True)
        tracker.record_evict(0, 0, cycle=40)
        assert tracker.ace_word_cycles == 40

    def test_unace_write_to_evict_is_unace(self):
        tracker = LifetimeTracker()
        tracker.record_write(0, 0, cycle=0, ace=False)
        tracker.record_evict(0, 0, cycle=40)
        assert tracker.ace_word_cycles == 0

    def test_interval_before_write_is_unace(self):
        tracker = LifetimeTracker()
        tracker.record_fill(0, 0, cycle=0)
        tracker.record_write(0, 0, cycle=50, ace=True)
        tracker.record_read(0, 0, cycle=70, ace=True)
        # Only the write=>read interval (20 cycles) is ACE.
        assert tracker.ace_word_cycles == 20

    def test_unace_read_does_not_credit(self):
        tracker = LifetimeTracker()
        tracker.record_fill(0, 0, cycle=0)
        tracker.record_read(0, 0, cycle=25, ace=False)
        assert tracker.ace_word_cycles == 0

    def test_read_after_unace_read_counts_from_unace_read(self):
        tracker = LifetimeTracker()
        tracker.record_fill(0, 0, cycle=0)
        tracker.record_read(0, 0, cycle=10, ace=False)
        tracker.record_read(0, 0, cycle=30, ace=True)
        # fill=>unace-read is not credited; unace-read=>ace-read is.
        assert tracker.ace_word_cycles == 20


class TestFillOverLiveWord:
    def test_fill_over_dirty_ace_word_keeps_write_evict_credit(self):
        """Regression: a fill over a still-live word must close the pending
        interval as an eviction, not silently drop it — a dirty ACE write
        awaiting eviction keeps its Write=>Evict credit."""
        tracker = LifetimeTracker()
        tracker.record_write(0, 0, cycle=0, ace=True)
        tracker.record_fill(0, 0, cycle=40)
        assert tracker.ace_word_cycles == 40

    def test_fill_over_unace_dirty_word_stays_unace(self):
        tracker = LifetimeTracker()
        tracker.record_write(0, 0, cycle=0, ace=False)
        tracker.record_fill(0, 0, cycle=40)
        assert tracker.ace_word_cycles == 0

    def test_fill_over_clean_word_stays_unace(self):
        tracker = LifetimeTracker()
        tracker.record_fill(0, 0, cycle=0)
        tracker.record_read(0, 0, cycle=10, ace=True)
        tracker.record_fill(0, 0, cycle=50)
        # fill=>read is ACE (10 cycles); read=>implicit-evict is not.
        assert tracker.ace_word_cycles == 10

    def test_refill_restarts_interval_state(self):
        tracker = LifetimeTracker()
        tracker.record_write(0, 0, cycle=0, ace=True)
        tracker.record_fill(0, 0, cycle=30)
        tracker.record_evict(0, 0, cycle=100)
        # Write=>implicit-evict credited (30); fill=>evict clean is not.
        assert tracker.ace_word_cycles == 30


class TestWordIndependence:
    def test_words_tracked_separately(self):
        tracker = LifetimeTracker()
        tracker.record_fill(0, 0, cycle=0)
        tracker.record_fill(0, 1, cycle=0)
        tracker.record_read(0, 0, cycle=100, ace=True)
        tracker.record_evict(0, 1, cycle=100)
        assert tracker.ace_word_cycles == 100

    def test_lines_tracked_separately(self):
        tracker = LifetimeTracker()
        tracker.record_fill(0, 0, cycle=0)
        tracker.record_fill(1, 0, cycle=0)
        tracker.record_read(1, 0, cycle=60, ace=True)
        assert tracker.ace_word_cycles == 60


class TestFinalize:
    def test_finalize_treats_dirty_ace_as_needed(self):
        tracker = LifetimeTracker()
        tracker.record_write(0, 0, cycle=0, ace=True)
        tracker.finalize(cycle=200)
        assert tracker.ace_word_cycles == 200

    def test_finalize_clean_data_unace(self):
        tracker = LifetimeTracker()
        tracker.record_fill(0, 0, cycle=0)
        tracker.record_read(0, 0, cycle=50, ace=True)
        tracker.finalize(cycle=200)
        assert tracker.ace_word_cycles == 50

    def test_finalize_clears_state(self):
        tracker = LifetimeTracker()
        tracker.record_write(0, 0, cycle=0, ace=True)
        tracker.finalize(cycle=100)
        before = tracker.ace_word_cycles
        tracker.finalize(cycle=500)
        assert tracker.ace_word_cycles == before


class TestWarmWords:
    def test_warm_dirty_words_are_ace_until_evict(self):
        tracker = LifetimeTracker()
        tracker.warm_words(0, range(8), cycle=0, dirty=True, ace=True)
        tracker.finalize(cycle=100)
        assert tracker.ace_word_cycles == 8 * 100

    def test_warm_clean_words_unace_until_read(self):
        tracker = LifetimeTracker()
        tracker.warm_words(0, range(4), cycle=0, dirty=False, ace=True)
        tracker.record_read(0, 0, cycle=50, ace=True)
        tracker.finalize(cycle=100)
        assert tracker.ace_word_cycles == 50


class TestAceBitCycles:
    def test_scales_with_word_bits(self):
        tracker = LifetimeTracker(word_bits=32)
        tracker.record_write(0, 0, cycle=0, ace=True)
        tracker.record_evict(0, 0, cycle=10)
        assert tracker.ace_bit_cycles() == pytest.approx(320.0)

    def test_zero_duration_interval(self):
        tracker = LifetimeTracker()
        tracker.record_fill(0, 0, cycle=5)
        tracker.record_read(0, 0, cycle=5, ace=True)
        assert tracker.ace_word_cycles == 0


class TestLifetimeProperties:
    @given(
        events=st.lists(
            st.tuples(
                st.sampled_from(["fill", "read", "write", "evict"]),
                st.integers(min_value=0, max_value=3),   # word
                st.booleans(),                            # ace
            ),
            min_size=1,
            max_size=60,
        )
    )
    def test_ace_cycles_never_exceed_elapsed_word_time(self, events):
        """ACE word-cycles can never exceed words x elapsed cycles."""
        tracker = LifetimeTracker()
        cycle = 0
        for kind, word, ace in events:
            cycle += 5
            if kind == "fill":
                tracker.record_fill(0, word, cycle, ace=ace)
            elif kind == "read":
                tracker.record_read(0, word, cycle, ace=ace)
            elif kind == "write":
                tracker.record_write(0, word, cycle, ace=ace)
            else:
                tracker.record_evict(0, word, cycle)
        tracker.finalize(cycle)
        assert 0 <= tracker.ace_word_cycles <= 4 * cycle
