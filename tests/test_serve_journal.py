"""Job-journal unit tests: append/replay, torn-tail salvage, compaction,
schema policing, and the fsck integration that audits/repairs journals."""

from __future__ import annotations

import json

import pytest

from repro.serve.journal import (
    JOURNAL_SCHEMA_VERSION,
    JobJournal,
    JournalError,
)
from repro.store.fsck import fsck_store
from repro.store.result_store import ResultStore


def _journal(tmp_path) -> JobJournal:
    return JobJournal(tmp_path / "journal.jsonl")


def _spec(name: str) -> dict:
    return {"kind": "simulate", "name": name}


# ------------------------------------------------------------ append/replay


def test_submit_without_terminal_is_outstanding(tmp_path):
    journal = _journal(tmp_path)
    journal.append_submit("d1", _spec("one"), "alice")
    journal.append_submit("d2", _spec("two"), "bob")
    journal.append_terminal("d1", "done")
    outstanding = journal.outstanding()
    assert [entry.digest for entry in outstanding] == ["d2"]
    assert outstanding[0].spec == _spec("two")
    assert outstanding[0].client == "bob"
    assert not outstanding[0].started


def test_started_job_without_terminal_is_orphaned_running(tmp_path):
    journal = _journal(tmp_path)
    journal.append_submit("d1", _spec("one"), "alice")
    journal.append_start("d1")
    audit = journal.audit()
    assert audit.orphaned_running == 1
    assert audit.entries[0].started
    assert "running" in audit.entries[0].describe()


def test_every_terminal_event_clears_the_entry(tmp_path):
    journal = _journal(tmp_path)
    for index, state in enumerate(("done", "failed", "quarantined", "cancelled")):
        journal.append_submit(f"d{index}", _spec(str(index)), "c")
        journal.append_terminal(f"d{index}", state, error=None if state == "done" else "boom")
    assert journal.outstanding() == []


def test_append_terminal_rejects_non_terminal_state(tmp_path):
    with pytest.raises(ValueError, match="not a terminal"):
        _journal(tmp_path).append_terminal("d1", "running")


def test_replay_preserves_submission_order(tmp_path):
    journal = _journal(tmp_path)
    for index in range(5):
        journal.append_submit(f"d{index}", _spec(str(index)), "c")
    journal.append_terminal("d2", "done")
    assert [e.digest for e in journal.outstanding()] == ["d0", "d1", "d3", "d4"]


def test_missing_file_is_empty_not_error(tmp_path):
    assert _journal(tmp_path).outstanding() == []


# ------------------------------------------------------- damage + salvage


def test_torn_final_line_is_salvaged(tmp_path):
    journal = _journal(tmp_path)
    journal.append_submit("d1", _spec("one"), "c")
    journal.append_submit("d2", _spec("two"), "c")
    with open(journal.path, "ab") as handle:  # a crash-torn half record
        handle.write(b'{"schema_version":1,"event":"subm')
    audit = journal.audit()
    assert audit.torn_tail
    assert [e.digest for e in audit.entries] == ["d1", "d2"]


def test_append_truncates_torn_tail_first(tmp_path):
    journal = _journal(tmp_path)
    journal.append_submit("d1", _spec("one"), "c")
    with open(journal.path, "ab") as handle:
        handle.write(b'{"half":')
    journal.append_submit("d2", _spec("two"), "c")
    audit = journal.audit()
    assert not audit.torn_tail  # the tear was cleaned up by the append
    assert [e.digest for e in audit.entries] == ["d1", "d2"]


def test_midfile_corruption_raises_journal_error(tmp_path):
    journal = _journal(tmp_path)
    journal.append_submit("d1", _spec("one"), "c")
    with open(journal.path, "ab") as handle:
        handle.write(b"not json at all\n")
    journal.append_submit("d2", _spec("two"), "c")
    with pytest.raises(JournalError, match="corrupt journal record"):
        journal.outstanding()


def test_schema_mismatch_raises_journal_error(tmp_path):
    journal = _journal(tmp_path)
    record = {"schema_version": JOURNAL_SCHEMA_VERSION + 1, "event": "submit",
              "digest": "d1", "spec": _spec("one"), "client": "c"}
    journal.path.write_text(json.dumps(record) + "\n")
    with pytest.raises(JournalError, match="unsupported journal schema"):
        journal.outstanding()


# --------------------------------------------------------------- compaction


def test_compact_keeps_only_outstanding_submits(tmp_path):
    journal = _journal(tmp_path)
    for index in range(4):
        journal.append_submit(f"d{index}", _spec(str(index)), "c")
    journal.append_start("d0")
    journal.append_terminal("d0", "done")
    journal.append_start("d1")  # orphaned running
    assert journal.compact() == 3
    lines = journal.path.read_text().splitlines()
    assert len(lines) == 3  # one submit per outstanding job, nothing else
    records = [json.loads(line) for line in lines]
    assert all(record["event"] == "submit" for record in records)
    # The orphaned-running start marker is gone: d1 replays as queued.
    assert [e.started for e in journal.outstanding()] == [False, False, False]


def test_compact_empty_journal_leaves_empty_file(tmp_path):
    journal = _journal(tmp_path)
    journal.append_submit("d1", _spec("one"), "c")
    journal.append_terminal("d1", "done")
    assert journal.compact() == 0
    assert journal.path.read_text() == ""


# ----------------------------------------------------------- fsck coverage


def _store_with_journal(tmp_path):
    """A real store directory hosting a journal (what fsck walks)."""
    store = ResultStore(tmp_path / "store")
    store.close()
    return tmp_path / "store", JobJournal(tmp_path / "store" / "journal.jsonl")


def test_fsck_clean_journal_reports_outstanding_jobs(tmp_path):
    store_dir, journal = _store_with_journal(tmp_path)
    journal.append_submit("d1", _spec("one"), "c")
    report = fsck_store(store_dir)
    assert report.clean
    assert report.journaled_jobs == 1


def test_fsck_repairs_torn_journal_tail(tmp_path):
    store_dir, journal = _store_with_journal(tmp_path)
    journal.append_submit("d1", _spec("one"), "c")
    with open(journal.path, "ab") as handle:
        handle.write(b'{"schema_version":1,"event"')
    report = fsck_store(store_dir)
    assert any("torn final journal record" in f.problem and f.repairable
               for f in report.findings)
    report = fsck_store(store_dir, repair=True)
    assert all(f.repaired for f in report.findings)
    assert fsck_store(store_dir).clean
    assert [e.digest for e in journal.outstanding()] == ["d1"]


def test_fsck_repair_requeues_orphaned_running_jobs(tmp_path):
    store_dir, journal = _store_with_journal(tmp_path)
    journal.append_submit("d1", _spec("one"), "c")
    journal.append_start("d1")  # daemon died mid-evaluation
    report = fsck_store(store_dir)
    assert any("orphaned in the running state" in f.problem for f in report.findings)
    fsck_store(store_dir, repair=True)
    clean = fsck_store(store_dir)
    assert clean.clean and clean.journaled_jobs == 1
    assert not journal.outstanding()[0].started  # back to queued


def test_fsck_reports_midfile_journal_corruption_unrepairable(tmp_path):
    store_dir, journal = _store_with_journal(tmp_path)
    journal.append_submit("d1", _spec("one"), "c")
    with open(journal.path, "ab") as handle:
        handle.write(b"garbage\n")
    journal.append_submit("d2", _spec("two"), "c")
    report = fsck_store(store_dir, repair=True)
    corrupt = [f for f in report.findings if "corrupt job journal" in f.problem]
    assert corrupt and not corrupt[0].repairable and not corrupt[0].repaired
