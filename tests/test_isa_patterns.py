"""Tests for memory address patterns."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.isa.memoryref import (
    FixedPattern,
    LineCoverPattern,
    PointerChasePattern,
    RandomPattern,
    StridedPattern,
)
from repro.utils.rng import DeterministicRng


RNG = DeterministicRng(0)


class TestFixedPattern:
    def test_constant(self):
        pattern = FixedPattern(address=1024)
        assert pattern.resolve(0, RNG) == 1024
        assert pattern.resolve(999, RNG) == 1024

    def test_footprint(self):
        assert FixedPattern(address=0).footprint_bytes() == 1


class TestStridedPattern:
    def test_progression(self):
        pattern = StridedPattern(base=0, stride=8, region=64)
        assert [pattern.resolve(i, RNG) for i in range(4)] == [0, 8, 16, 24]

    def test_wraps_at_region(self):
        pattern = StridedPattern(base=0, stride=8, region=32)
        assert pattern.resolve(4, RNG) == 0

    def test_base_offset(self):
        pattern = StridedPattern(base=100, stride=4, region=16)
        assert pattern.resolve(1, RNG) == 104

    def test_validation(self):
        with pytest.raises(ValueError):
            StridedPattern(base=0, stride=0, region=64)
        with pytest.raises(ValueError):
            StridedPattern(base=0, stride=8, region=0)

    @given(iteration=st.integers(min_value=0, max_value=10**6))
    def test_stays_in_region(self, iteration):
        pattern = StridedPattern(base=256, stride=24, region=4096)
        address = pattern.resolve(iteration, RNG)
        assert 256 <= address < 256 + 4096


class TestPointerChasePattern:
    def test_same_sequence_as_strided(self):
        chase = PointerChasePattern(base=0, stride=64, region=1024)
        strided = StridedPattern(base=0, stride=64, region=1024)
        assert [chase.resolve(i, RNG) for i in range(20)] == [
            strided.resolve(i, RNG) for i in range(20)
        ]

    def test_footprint(self):
        assert PointerChasePattern(base=0, stride=64, region=2048).footprint_bytes() == 2048


class TestLineCoverPattern:
    def test_covers_every_word_across_slots(self):
        line_bytes, word_bytes, slots = 64, 8, 8
        patterns = [
            LineCoverPattern(base=0, line_bytes=line_bytes, region=line_bytes,
                             word_bytes=word_bytes, slot=slot, slots=slots)
            for slot in range(slots)
        ]
        addresses = {pattern.resolve(0, RNG) for pattern in patterns}
        assert addresses == {word * word_bytes for word in range(8)}

    def test_advances_one_line_per_iteration(self):
        pattern = LineCoverPattern(base=0, line_bytes=64, region=4096, slots=1)
        line0 = pattern.resolve(0, RNG) // 64
        line1 = pattern.resolve(1, RNG) // 64
        assert line1 == line0 + 1

    def test_iteration_offset_targets_previous_line(self):
        current = LineCoverPattern(base=0, line_bytes=64, region=4096, slots=1)
        previous = LineCoverPattern(base=0, line_bytes=64, region=4096, slots=1, iteration_offset=-1)
        assert previous.resolve(5, RNG) // 64 == current.resolve(4, RNG) // 64

    def test_negative_offset_clamped_at_zero(self):
        pattern = LineCoverPattern(base=0, line_bytes=64, region=4096, slots=1, iteration_offset=-1)
        assert pattern.resolve(0, RNG) < 64

    def test_slot_validation(self):
        with pytest.raises(ValueError):
            LineCoverPattern(base=0, line_bytes=64, region=64, slot=4, slots=4)

    @given(iteration=st.integers(min_value=0, max_value=10**5),
           slot=st.integers(min_value=0, max_value=15))
    def test_stays_in_region(self, iteration, slot):
        pattern = LineCoverPattern(base=0, line_bytes=64, region=8192, slot=slot, slots=16)
        assert 0 <= pattern.resolve(iteration, RNG) < 8192


class TestRandomPattern:
    def test_within_region_and_aligned(self):
        rng = DeterministicRng(42)
        pattern = RandomPattern(base=4096, region=1024, alignment=8)
        for iteration in range(200):
            address = pattern.resolve(iteration, rng)
            assert 4096 <= address < 4096 + 1024
            assert (address - 4096) % 8 == 0

    def test_deterministic_given_rng_state(self):
        pattern = RandomPattern(base=0, region=4096)
        a = [pattern.resolve(i, DeterministicRng(7)) for i in range(5)]
        b = [pattern.resolve(i, DeterministicRng(7)) for i in range(5)]
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomPattern(base=0, region=0)
        with pytest.raises(ValueError):
            RandomPattern(base=0, region=64, alignment=0)
