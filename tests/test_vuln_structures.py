"""Tests for the structure registry and the flag-gated structures end-to-end."""

from __future__ import annotations

import pytest

from repro.registry import RegistryError
from repro.api.registry import registries
from repro.avf.analysis import StructureGroup, group_structures, normalized_group_ser
from repro.avf.report import build_report
from repro.stressmark.fitness import FitnessFunction
from repro.uarch.config import baseline_config, extended_config
from repro.uarch.faultrates import unit_fault_rates
from repro.uarch.pipeline import OutOfOrderCore
from repro.uarch.structures import core_structure_accumulators
from repro.vuln import (
    STRUCTURES,
    StructureName,
    VulnerableStructure,
    enabled_structures,
    register_structure,
    structure_descriptor,
)


class TestRegistry:
    def test_stock_structures_registered(self):
        names = STRUCTURES.names()
        assert names == [
            "iq", "rob", "lq_tag", "lq_data", "sq_tag", "sq_data", "rf", "fu",
            "dl1", "l2", "dtlb", "sb", "l2_tlb",
        ]

    def test_nearest_match_error(self):
        with pytest.raises(RegistryError, match="did you mean 'dtlb'"):
            STRUCTURES.get("dtlbb")

    def test_structure_descriptor_accepts_members(self):
        descriptor = structure_descriptor(StructureName.ROB)
        assert descriptor.name == "rob"
        assert descriptor.fault_rate_key == "rob"

    def test_descriptor_validation(self):
        with pytest.raises(ValueError):
            VulnerableStructure(
                name="x", group="qs", kind="bogus",
                entries=lambda c: 1, bits_per_entry=lambda c: 1,
            )
        with pytest.raises(ValueError):
            VulnerableStructure(
                name="x", group="", kind="core",
                entries=lambda c: 1, bits_per_entry=lambda c: 1,
            )

    def test_register_structure_round_trip(self):
        descriptor = VulnerableStructure(
            name="test_scratchpad", group="qs", kind="core",
            entries=lambda c: 4, bits_per_entry=lambda c: 8,
        )
        member = register_structure(descriptor)
        try:
            assert StructureName("test_scratchpad") is member
            assert member.is_core and member.is_queueing
            assert member in group_structures(StructureGroup.QS)
            # Not enabled-gated, so every new ledger would track it; the
            # baseline helper picks it up immediately.
            accumulators = core_structure_accumulators(baseline_config())
            assert member in accumulators
            assert accumulators[member].total_bits == 32
        finally:
            STRUCTURES.unregister("test_scratchpad")

    def test_exposed_via_api_registries(self):
        assert registries()["structures"] is STRUCTURES

    def test_fault_rate_key_aliases_another_structures_rate(self):
        descriptor = VulnerableStructure(
            name="test_victim_cache", group="dl1_dtlb", kind="storage",
            entries=lambda c: 8, bits_per_entry=lambda c: 512,
            fault_rate_key="dl1",  # shares the DL1 circuit technology
        )
        member = register_structure(descriptor)
        try:
            rates = unit_fault_rates().with_rate(StructureName.DL1, 0.25)
            assert rates.rate(member) == 0.25
            # An explicit per-structure rate still wins over the alias.
            assert rates.with_rate(member, 0.75).rate(member) == 0.75
            # Stock structures are unaffected (key == own name).
            assert rates.rate(StructureName.ROB) == 1.0
        finally:
            STRUCTURES.unregister("test_victim_cache")

    def test_enabled_structures_respects_flags(self):
        baseline_names = {d.name for d in enabled_structures(baseline_config())}
        extended_names = {d.name for d in enabled_structures(extended_config())}
        assert "sb" not in baseline_names and "l2_tlb" not in baseline_names
        assert {"sb", "l2_tlb"} <= extended_names


@pytest.fixture(scope="module")
def extended_result():
    from repro.stressmark.generator import StressmarkGenerator, reference_knobs

    config = extended_config()
    generator = StressmarkGenerator(config=config, max_instructions=2_000)
    program = generator.codegen.generate(reference_knobs(config))
    return OutOfOrderCore(config, seed=1).run(program, max_instructions=2_000)


class TestExtendedStructuresEndToEnd:
    def test_new_structures_have_accounts(self, extended_result):
        assert StructureName.SB in extended_result.accumulators
        assert StructureName.L2_TLB in extended_result.accumulators

    def test_store_buffer_accrues_ace_time(self, extended_result):
        sb = extended_result.accumulators[StructureName.SB]
        assert sb.ace_bit_cycles > 0.0
        assert 0.0 < extended_result.avf(StructureName.SB) <= 1.0

    def test_l2_tlb_accrues_ace_time(self, extended_result):
        assert extended_result.avf(StructureName.L2_TLB) > 0.0

    def test_report_includes_new_structures(self, extended_result):
        report = build_report(extended_result)
        row = report.as_row()
        assert "avf_sb" in row and "avf_l2_tlb" in row
        assert report.avf(StructureName.SB) == extended_result.avf(StructureName.SB)

    def test_new_structures_feed_group_ser_and_fitness(self, extended_result):
        rates = unit_fault_rates()
        # Zeroing the store buffer's fault rate must change the QS-group SER:
        # proof that the new structure participates in the aggregate.
        with_sb = normalized_group_ser(extended_result, StructureGroup.QS, rates)
        without_sb = normalized_group_ser(
            extended_result, StructureGroup.QS, rates.with_rate(StructureName.SB, 0.0)
        )
        assert with_sb != without_sb
        # Same story for the balanced GA fitness objective (l2_tlb is in the
        # DL1+DTLB group).
        fitness = FitnessFunction.balanced(rates)
        muted = FitnessFunction.balanced(rates.with_rate(StructureName.L2_TLB, 0.0))
        assert fitness(extended_result) != muted(extended_result)

    def test_baseline_output_untouched_by_registration(self):
        config = baseline_config()
        accumulators = core_structure_accumulators(config)
        assert StructureName.SB not in accumulators
        assert len(accumulators) == 8


class TestExtendedConfigTiming:
    def test_l2_tlb_hit_shortens_walk(self):
        from repro.memory.hierarchy import MemoryHierarchy

        config = extended_config()
        with_l2 = MemoryHierarchy(
            dl1_config=config.dl1, l2_config=config.l2, dtlb_config=config.dtlb,
            memory_latency=config.memory_latency, tlb_miss_penalty=config.tlb_miss_penalty,
            l2_tlb_config=config.l2_tlb, l2_tlb_hit_latency=config.l2_tlb_hit_latency,
        )
        without = MemoryHierarchy(
            dl1_config=config.dl1, l2_config=config.l2, dtlb_config=config.dtlb,
            memory_latency=config.memory_latency, tlb_miss_penalty=config.tlb_miss_penalty,
        )
        address = 123 * 8192
        # Prime the L2 TLB, then evict the DTLB entry by filling its capacity.
        with_l2.access(address, is_write=False, cycle=0)
        without.access(address, is_write=False, cycle=0)
        for i in range(1, config.dtlb.entries + 1):
            with_l2.dtlb.access(address + i * 8192 * 1000, cycle=i)
            without.dtlb.access(address + i * 8192 * 1000, cycle=i)
        hit = with_l2.access(address, is_write=False, cycle=10_000)
        miss = without.access(address, is_write=False, cycle=10_000)
        assert not hit.tlb_hit and not miss.tlb_hit
        assert hit.latency < miss.latency
