"""Tests for the circuit-level fault-rate models (Figure 8a)."""

from __future__ import annotations

import pytest

from repro.uarch.faultrates import FaultRateModel, edr_fault_rates, rhc_fault_rates, unit_fault_rates
from repro.uarch.structures import StructureName


class TestUnitModel:
    def test_all_rates_one(self):
        model = unit_fault_rates()
        for structure in StructureName:
            assert model.rate(structure) == 1.0

    def test_name(self):
        assert unit_fault_rates().name == "unit"


class TestRhcModel:
    """Figure 8a, RHC column: hardened ROB (0.25), LQ (0.4), SQ (0.35)."""

    def test_hardened_structures(self):
        model = rhc_fault_rates()
        assert model.rate(StructureName.ROB) == 0.25
        assert model.rate(StructureName.LQ_TAG) == 0.4
        assert model.rate(StructureName.LQ_DATA) == 0.4
        assert model.rate(StructureName.SQ_TAG) == 0.35
        assert model.rate(StructureName.SQ_DATA) == 0.35

    def test_unhardened_structures(self):
        model = rhc_fault_rates()
        for structure in (StructureName.IQ, StructureName.FU, StructureName.RF):
            assert model.rate(structure) == 1.0

    def test_caches_unchanged(self):
        model = rhc_fault_rates()
        for structure in (StructureName.DL1, StructureName.DTLB, StructureName.L2):
            assert model.rate(structure) == 1.0


class TestEdrModel:
    """Figure 8a, EDR column: ROB/LQ/SQ fully protected (rate 0)."""

    def test_protected_structures_zero(self):
        model = edr_fault_rates()
        for structure in (
            StructureName.ROB,
            StructureName.LQ_TAG,
            StructureName.LQ_DATA,
            StructureName.SQ_TAG,
            StructureName.SQ_DATA,
        ):
            assert model.rate(structure) == 0.0

    def test_unprotected_structures(self):
        model = edr_fault_rates()
        for structure in (StructureName.IQ, StructureName.FU, StructureName.RF):
            assert model.rate(structure) == 1.0

    def test_caches_unchanged(self):
        model = edr_fault_rates()
        for structure in (StructureName.DL1, StructureName.DTLB, StructureName.L2):
            assert model.rate(structure) == 1.0


class TestFaultRateModel:
    def test_default_rate(self):
        model = FaultRateModel(name="custom", rates={}, default_rate=0.5)
        assert model.rate(StructureName.IQ) == 0.5

    def test_with_rate_returns_new_model(self):
        model = unit_fault_rates()
        derived = model.with_rate(StructureName.IQ, 0.1)
        assert derived.rate(StructureName.IQ) == 0.1
        assert model.rate(StructureName.IQ) == 1.0

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            FaultRateModel(name="bad", rates={StructureName.IQ: -1.0})

    def test_negative_default_rejected(self):
        with pytest.raises(ValueError):
            FaultRateModel(name="bad", default_rate=-0.5)
