"""Job-table unit tests: fair scheduling, dedup, backpressure, cancellation."""

from __future__ import annotations

import threading

import pytest

from repro.serve.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUARANTINED,
    QUEUED,
    RUNNING,
    JobTable,
    QueueFullError,
)


def _spec(name: str) -> dict:
    return {"kind": "simulate", "name": name}


def _submit(table: JobTable, name: str, client: str = "a"):
    job, deduped = table.submit(_spec(name), digest=f"digest-{name}", client=client)
    return job, deduped


def test_submit_assigns_ids_and_queues():
    table = JobTable()
    job, deduped = _submit(table, "one")
    assert not deduped
    assert job.state == QUEUED
    assert job.job_id == "job-1"
    assert table.get("job-1") is job
    assert table.stats()["queue_depth"] == 1


def test_next_job_marks_running_and_fifo_within_client():
    table = JobTable()
    first, _ = _submit(table, "one")
    second, _ = _submit(table, "two")
    assert table.next_job(timeout=0.1) is first
    assert first.state == RUNNING
    assert table.next_job(timeout=0.1) is second


def test_round_robin_across_clients():
    """A burst from one client cannot starve later-arriving clients."""
    table = JobTable()
    a1, _ = _submit(table, "a1", client="a")
    a2, _ = _submit(table, "a2", client="a")
    a3, _ = _submit(table, "a3", client="a")
    b1, _ = _submit(table, "b1", client="b")
    c1, _ = _submit(table, "c1", client="c")
    order = [table.next_job(timeout=0.1) for _ in range(5)]
    assert order == [a1, b1, c1, a2, a3]


def test_position_follows_round_robin_deal():
    table = JobTable()
    a1, _ = _submit(table, "a1", client="a")
    a2, _ = _submit(table, "a2", client="a")
    b1, _ = _submit(table, "b1", client="b")
    assert table.position(a1) == 0
    assert table.position(b1) == 1
    assert table.position(a2) == 2
    table.next_job(timeout=0.1)
    assert table.position(a1) is None  # running jobs have no queue position


def test_dedup_attaches_to_inflight_job():
    table = JobTable()
    job, _ = _submit(table, "same")
    again, deduped = table.submit(_spec("same"), digest="digest-same", client="b")
    assert deduped and again is job
    assert job.waiters == 2
    assert table.counters["dedup_hits"] == 1
    # Dedup also works while the job is running.
    table.next_job(timeout=0.1)
    third, deduped = table.submit(_spec("same"), digest="digest-same", client="c")
    assert deduped and third is job


def test_finished_digest_leaves_inflight_index():
    table = JobTable()
    job, _ = _submit(table, "same")
    table.next_job(timeout=0.1)
    table.finish(job, {"rows": []})
    assert job.state == DONE and job.result == {"rows": []}
    fresh, deduped = table.submit(_spec("same"), digest="digest-same", client="b")
    assert not deduped and fresh is not job


def test_queue_limit_rejects_with_retry_after():
    table = JobTable(queue_limit=2)
    _submit(table, "one")
    _submit(table, "two")
    with pytest.raises(QueueFullError) as excinfo:
        _submit(table, "three")
    assert excinfo.value.retry_after > 0
    assert table.counters["rejected"] == 1
    # The running job does not count against the bound.
    table.next_job(timeout=0.1)
    _submit(table, "three")


def test_cancel_queued_job():
    table = JobTable()
    job, _ = _submit(table, "one")
    returned, cancelled = table.cancel(job.job_id)
    assert cancelled and returned is job
    assert job.state == CANCELLED
    assert table.next_job(timeout=0.05) is None
    assert table.counters["cancelled"] == 1


def test_cancel_needs_every_waiter():
    """A deduplicated job survives until its last submitter cancels."""
    table = JobTable()
    job, _ = _submit(table, "same")
    table.submit(_spec("same"), digest="digest-same", client="b")
    _, cancelled = table.cancel(job.job_id)
    assert not cancelled and job.state == QUEUED
    _, cancelled = table.cancel(job.job_id)
    assert cancelled and job.state == CANCELLED


def test_cancel_running_job_is_refused():
    table = JobTable()
    job, _ = _submit(table, "one")
    table.next_job(timeout=0.1)
    returned, cancelled = table.cancel(job.job_id)
    assert returned is job and not cancelled
    assert job.state == RUNNING


def test_cancel_unknown_job():
    table = JobTable()
    assert table.cancel("job-99") == (None, False)


def test_fail_and_quarantine_states():
    table = JobTable()
    one, _ = _submit(table, "one")
    two, _ = _submit(table, "two")
    table.next_job(timeout=0.1)
    table.fail(one, "boom")
    assert one.state == FAILED and one.error == "boom"
    table.next_job(timeout=0.1)
    table.fail(two, "gone", quarantined=True)
    assert two.state == QUARANTINED
    counters = table.stats()["counters"]
    assert counters["failed"] == 1 and counters["quarantined"] == 1


def test_cancel_all_queued_on_shutdown():
    table = JobTable()
    running, _ = _submit(table, "running")
    table.next_job(timeout=0.1)
    _submit(table, "q1")
    _submit(table, "q2", client="b")
    assert len(table.cancel_all_queued()) == 2
    assert running.state == RUNNING  # the in-flight job is left to finish
    assert table.stats()["queue_depth"] == 0


def test_wait_returns_on_state_change():
    table = JobTable()
    job, _ = _submit(table, "one")

    def complete():
        picked = table.next_job(timeout=1.0)
        table.finish(picked, {"rows": [1]})

    thread = threading.Thread(target=complete)
    thread.start()
    state = table.wait(job, timeout=5.0)
    thread.join()
    assert state == DONE


def test_wait_timeout_returns_current_state():
    table = JobTable()
    job, _ = _submit(table, "one")
    assert table.wait(job, timeout=0.05) == QUEUED


def test_stats_shape():
    table = JobTable(queue_limit=7)
    _submit(table, "one")
    stats = table.stats()
    assert stats["queue_limit"] == 7
    assert stats["states"][QUEUED] == 1
    assert stats["counters"]["submitted"] == 1
    assert stats["clients"] == 1


def test_describe_includes_error_and_duration():
    table = JobTable()
    job, _ = _submit(table, "one")
    table.next_job(timeout=0.1)
    table.fail(job, "exploded")
    info = job.describe()
    assert info["error"] == "exploded"
    assert info["run_seconds"] >= 0


def test_queue_limit_validation():
    with pytest.raises(ValueError):
        JobTable(queue_limit=0)
