"""Tests for the Hardware Vulnerability Factor (HVF) analysis."""

from __future__ import annotations

import pytest

from repro.avf.analysis import StructureGroup, normalized_group_ser
from repro.avf.hvf import group_hvf, hvf_by_structure, hvf_gap, structure_hvf
from repro.uarch.faultrates import unit_fault_rates
from repro.uarch.pipeline import OutOfOrderCore
from repro.uarch.structures import StructureName


@pytest.fixture(scope="module")
def ace_result(request):
    """Stressmark-shaped (all-ACE) run on the small configuration."""
    small_config = request.getfixturevalue("small_config")
    program = request.getfixturevalue("stressmark_like_program")
    return OutOfOrderCore(small_config, seed=1).run(program, max_instructions=1_500)


@pytest.fixture(scope="module")
def unace_result(request):
    """The same structural program with every instruction marked un-ACE."""
    from dataclasses import replace

    from repro.isa.program import Program

    small_config = request.getfixturevalue("small_config")
    program = request.getfixturevalue("stressmark_like_program")
    unace_body = [replace(instruction, ace=False) for instruction in program.body]
    unace = Program(
        name="unace_variant",
        body=unace_body,
        iterations=program.iterations,
        branch_behaviors=dict(program.branch_behaviors),
        warmup_regions=list(program.warmup_regions),
    )
    return OutOfOrderCore(small_config, seed=1).run(unace, max_instructions=1_500)


class TestStructureHvf:
    def test_hvf_bounds_avf_for_core_structures(self, ace_result):
        for structure in ace_result.accumulators:
            if structure.is_core:
                assert ace_result.avf(structure) <= structure_hvf(ace_result, structure) + 1e-9

    def test_hvf_bounds_avf_for_every_structure(self, ace_result, unace_result):
        """The defining invariant: HVF is an upper bound on AVF, everywhere."""
        for result in (ace_result, unace_result):
            for structure in result.accumulators:
                assert result.avf(structure) <= structure_hvf(result, structure) + 1e-9

    def test_storage_structures_report_avf_itself(self, ace_result):
        """For storage structures the lifetime analysis already is the
        occupancy of live data, so HVF equals the AVF (not an occupancy max
        that could mask accounting regressions)."""
        for structure in ace_result.accumulators:
            if not structure.is_core:
                assert structure_hvf(ace_result, structure) == pytest.approx(
                    ace_result.avf(structure), abs=1e-12
                )

    def test_hvf_in_unit_range(self, ace_result):
        for structure, value in hvf_by_structure(ace_result).items():
            assert 0.0 <= value <= 1.0

    def test_hvf_covers_all_structures(self, ace_result):
        assert set(hvf_by_structure(ace_result)) == set(ace_result.accumulators)

    def test_hvf_is_workload_independent_of_aceness(self, ace_result, unace_result):
        """HVF (occupancy) is identical whether or not the program is ACE."""
        for structure in (StructureName.ROB, StructureName.IQ, StructureName.LQ_TAG):
            assert structure_hvf(ace_result, structure) == pytest.approx(
                structure_hvf(unace_result, structure), abs=1e-9
            )

    def test_avf_depends_on_aceness_but_hvf_does_not(self, ace_result, unace_result):
        assert unace_result.avf(StructureName.ROB) == 0.0
        assert ace_result.avf(StructureName.ROB) > 0.5


class TestGroupHvfAndGap:
    def test_group_hvf_bounds_group_ser(self, ace_result):
        rates = unit_fault_rates()
        for group in (StructureGroup.QS, StructureGroup.CORE):
            assert normalized_group_ser(ace_result, group, rates) <= group_hvf(ace_result, group) + 1e-9

    def test_gap_nonnegative(self, ace_result):
        assert all(value >= 0.0 for value in hvf_gap(ace_result).values())

    def test_stressmark_gap_small_for_rob(self, ace_result):
        """A 100%-ACE program closes the HVF-AVF gap on the ROB almost fully."""
        gap = hvf_gap(ace_result)[StructureName.ROB]
        assert gap < 0.05

    def test_unace_program_has_large_gap(self, ace_result, unace_result):
        assert hvf_gap(unace_result)[StructureName.ROB] > hvf_gap(ace_result)[StructureName.ROB]

    def test_empty_group_is_zero(self, ace_result):
        # Build a result-like object without cache accumulators by filtering.
        assert group_hvf(ace_result, StructureGroup.L2) >= 0.0
