"""Tests for repro.utils: deterministic RNG and statistics helpers."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.utils.rng import DeterministicRng, derive_seed
from repro.utils.stats import RunningMean, clamp, geometric_mean, weighted_mean


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)

    def test_differs_by_component(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_differs_by_base(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_returns_int(self):
        assert isinstance(derive_seed(0), int)


class TestDeterministicRng:
    def test_same_seed_same_sequence(self):
        a = DeterministicRng(7)
        b = DeterministicRng(7)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_seed_different_sequence(self):
        a = DeterministicRng(7)
        b = DeterministicRng(8)
        assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]

    def test_spawn_independent_of_parent_consumption(self):
        parent_a = DeterministicRng(3)
        parent_b = DeterministicRng(3)
        parent_b.random()  # consume some state
        child_a = parent_a.spawn("x")
        child_b = parent_b.spawn("x")
        assert [child_a.random() for _ in range(5)] == [child_b.random() for _ in range(5)]

    def test_spawn_differs_by_component(self):
        rng = DeterministicRng(3)
        assert rng.spawn("x").random() != rng.spawn("y").random()

    def test_randint_bounds(self):
        rng = DeterministicRng(1)
        values = [rng.randint(2, 5) for _ in range(200)]
        assert min(values) >= 2 and max(values) <= 5
        assert set(values) == {2, 3, 4, 5}

    def test_choice(self):
        rng = DeterministicRng(1)
        options = ["a", "b", "c"]
        assert all(rng.choice(options) in options for _ in range(50))

    def test_coin_extremes(self):
        rng = DeterministicRng(1)
        assert not any(rng.coin(0.0) for _ in range(50))
        assert all(rng.coin(1.0) for _ in range(50))

    def test_coin_probability(self):
        rng = DeterministicRng(1)
        hits = sum(rng.coin(0.3) for _ in range(5000))
        assert 0.25 < hits / 5000 < 0.35

    def test_permutation(self):
        rng = DeterministicRng(5)
        perm = rng.permutation(10)
        assert sorted(perm) == list(range(10))

    def test_shuffle_in_place(self):
        rng = DeterministicRng(5)
        items = list(range(20))
        rng.shuffle(items)
        assert sorted(items) == list(range(20))

    def test_sample_distinct(self):
        rng = DeterministicRng(5)
        sample = rng.sample(list(range(100)), 10)
        assert len(set(sample)) == 10

    def test_pick_weighted_respects_zero_weight(self):
        rng = DeterministicRng(9)
        picks = {rng.pick_weighted([("a", 0.0), ("b", 1.0)]) for _ in range(50)}
        assert picks == {"b"}

    def test_uniform_bounds(self):
        rng = DeterministicRng(2)
        values = [rng.uniform(1.5, 2.5) for _ in range(100)]
        assert all(1.5 <= value <= 2.5 for value in values)

    @given(seed=st.integers(min_value=0, max_value=2**32))
    def test_spawn_reproducible_property(self, seed):
        assert DeterministicRng(seed).spawn("k").random() == DeterministicRng(seed).spawn("k").random()


class TestRunningMean:
    def test_empty(self):
        tracker = RunningMean()
        assert tracker.mean == 0.0
        assert tracker.max == 0.0

    def test_mean_and_max(self):
        tracker = RunningMean()
        for value in (1.0, 2.0, 3.0):
            tracker.add(value)
        assert tracker.mean == pytest.approx(2.0)
        assert tracker.max == pytest.approx(3.0)
        assert tracker.count == 3


class TestWeightedMean:
    def test_basic(self):
        assert weighted_mean([1.0, 3.0], [1.0, 1.0]) == pytest.approx(2.0)

    def test_weights(self):
        assert weighted_mean([1.0, 3.0], [3.0, 1.0]) == pytest.approx(1.5)

    def test_zero_weights(self):
        assert weighted_mean([1.0, 2.0], [0.0, 0.0]) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            weighted_mean([1.0], [1.0, 2.0])


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty(self):
        assert geometric_mean([]) == 0.0

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    @given(st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=1, max_size=20))
    def test_between_min_and_max(self, values):
        result = geometric_mean(values)
        assert min(values) - 1e-9 <= result <= max(values) + 1e-9


class TestClamp:
    def test_inside(self):
        assert clamp(0.5, 0.0, 1.0) == 0.5

    def test_below(self):
        assert clamp(-1.0, 0.0, 1.0) == 0.0

    def test_above(self):
        assert clamp(2.0, 0.0, 1.0) == 1.0

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            clamp(0.5, 1.0, 0.0)

    @given(st.floats(allow_nan=False, allow_infinity=False, width=32))
    def test_always_within_bounds(self, value):
        assert 0.0 <= clamp(value, 0.0, 1.0) <= 1.0
