"""Tests for the stressmark fitness functions."""

from __future__ import annotations

import pytest

from repro.stressmark.codegen import CodeGenerator
from repro.stressmark.fitness import FitnessFunction, GroupWeights
from repro.stressmark.generator import reference_knobs
from repro.uarch.config import baseline_config
from repro.uarch.faultrates import edr_fault_rates, unit_fault_rates
from repro.uarch.pipeline import OutOfOrderCore


@pytest.fixture(scope="module")
def stressmark_result():
    config = baseline_config()
    program = CodeGenerator(config).generate(reference_knobs(config))
    return OutOfOrderCore(config, seed=1).run(program, max_instructions=4_000)


class TestGroupWeights:
    def test_defaults(self):
        weights = GroupWeights()
        assert weights.core > weights.dl1_dtlb > weights.l2

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            GroupWeights(core=-1.0)

    def test_all_zero_rejected(self):
        with pytest.raises(ValueError):
            GroupWeights(core=0.0, dl1_dtlb=0.0, l2=0.0)


class TestFitnessFunctions:
    def test_balanced_positive_for_stressmark(self, stressmark_result):
        fitness = FitnessFunction.balanced()
        assert fitness(stressmark_result) > 0.5

    def test_overall_dominated_by_caches(self, stressmark_result):
        """The literal overall SER is close to the cache AVF (caches dominate bits)."""
        fitness = FitnessFunction.overall()
        value = fitness(stressmark_result)
        assert 0.5 < value <= 1.0

    def test_core_only_ignores_caches(self, stressmark_result):
        from repro.avf.analysis import StructureGroup, normalized_group_ser

        fitness = FitnessFunction.core_only()
        expected = normalized_group_ser(stressmark_result, StructureGroup.CORE, unit_fault_rates())
        assert fitness(stressmark_result) == pytest.approx(expected)

    def test_edr_rates_reduce_fitness(self, stressmark_result):
        balanced_unit = FitnessFunction.balanced(unit_fault_rates())
        balanced_edr = FitnessFunction.balanced(edr_fault_rates())
        assert balanced_edr(stressmark_result) < balanced_unit(stressmark_result)

    def test_custom_weights_change_score(self, stressmark_result):
        cache_heavy = FitnessFunction(
            fault_rates=unit_fault_rates(),
            weights=GroupWeights(core=0.1, dl1_dtlb=1.0, l2=1.0),
            name="balanced",
        )
        core_heavy = FitnessFunction(
            fault_rates=unit_fault_rates(),
            weights=GroupWeights(core=1.0, dl1_dtlb=0.1, l2=0.1),
            name="balanced",
        )
        assert cache_heavy(stressmark_result) != pytest.approx(core_heavy(stressmark_result))

    def test_names(self):
        assert FitnessFunction.balanced().name == "balanced"
        assert FitnessFunction.overall().name == "overall"
        assert FitnessFunction.core_only().name == "core_only"
