"""Tests for the two-level memory hierarchy."""

from __future__ import annotations

import pytest

from repro.memory.cache import CacheConfig
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.tlb import TlbConfig


def small_hierarchy(memory_latency: int = 100, tlb_penalty: int = 20) -> MemoryHierarchy:
    return MemoryHierarchy(
        dl1_config=CacheConfig(name="dl1", size_bytes=1024, associativity=2, line_bytes=64, hit_latency=3),
        l2_config=CacheConfig(name="l2", size_bytes=8 * 1024, associativity=1, line_bytes=64, hit_latency=7),
        dtlb_config=TlbConfig(entries=4, page_bytes=4096),
        memory_latency=memory_latency,
        tlb_miss_penalty=tlb_penalty,
    )


class TestLatencies:
    def test_cold_access_pays_full_path(self):
        hierarchy = small_hierarchy()
        outcome = hierarchy.access(0, is_write=False, cycle=1)
        assert not outcome.dl1_hit and not outcome.l2_hit and not outcome.tlb_hit
        assert outcome.latency == 20 + 3 + 7 + 100
        assert outcome.is_l2_miss

    def test_dl1_hit_latency(self):
        hierarchy = small_hierarchy()
        hierarchy.access(0, is_write=False, cycle=1)
        outcome = hierarchy.access(0, is_write=False, cycle=2)
        assert outcome.dl1_hit and outcome.tlb_hit
        assert outcome.latency == 3
        assert not outcome.is_l2_miss

    def test_l2_hit_latency(self):
        hierarchy = small_hierarchy()
        hierarchy.access(0, is_write=False, cycle=1)
        # Evict line 0 from the tiny DL1 by touching conflicting lines.
        hierarchy.access(8 * 64, is_write=False, cycle=2)
        hierarchy.access(16 * 64, is_write=False, cycle=3)
        outcome = hierarchy.access(0, is_write=False, cycle=4)
        assert not outcome.dl1_hit and outcome.l2_hit
        assert outcome.latency == 3 + 7

    def test_tlb_miss_penalty_added(self):
        hierarchy = small_hierarchy()
        hierarchy.access(0, is_write=False, cycle=1)
        outcome = hierarchy.access(4096, is_write=False, cycle=2)
        assert not outcome.tlb_hit
        assert outcome.latency >= 20

    def test_validation(self):
        with pytest.raises(ValueError):
            small_hierarchy(memory_latency=0)

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            small_hierarchy().access(-8, is_write=False, cycle=1)


class TestWritebackPropagation:
    def test_dirty_dl1_victim_reaches_l2(self):
        hierarchy = small_hierarchy()
        hierarchy.access(0, is_write=True, cycle=1)
        # Force eviction of line 0 from DL1 (2-way, 8 sets -> 8*64 aliases).
        hierarchy.access(8 * 64, is_write=False, cycle=2)
        hierarchy.access(16 * 64, is_write=False, cycle=3)
        # The L2 should now hold the dirty line 0 data as a write event.
        hierarchy.finalize(cycle=100)
        assert hierarchy.l2.lifetime.ace_bit_cycles() > 0.0


class TestWarmRegion:
    def test_warm_region_fills_each_level_to_capacity(self):
        hierarchy = small_hierarchy()
        hierarchy.warm_region(base=0, size_bytes=16 * 1024, dirty=True, ace=True)
        assert hierarchy.dl1.resident_line_count() == hierarchy.dl1.config.num_lines
        assert hierarchy.l2.resident_line_count() == hierarchy.l2.config.num_lines
        assert hierarchy.dtlb.resident_entry_count() == hierarchy.dtlb.config.entries

    def test_warm_region_smaller_than_caches(self):
        hierarchy = small_hierarchy()
        hierarchy.warm_region(base=0, size_bytes=512, dirty=True, ace=True)
        assert hierarchy.dl1.resident_line_count() == 512 // 64

    def test_warm_dirty_region_is_ace(self):
        hierarchy = small_hierarchy()
        hierarchy.warm_region(base=0, size_bytes=1024, dirty=True, ace=True)
        hierarchy.finalize(cycle=100)
        assert hierarchy.dl1.avf(100) > 0.9

    def test_warm_clean_region_not_ace_without_reads(self):
        hierarchy = small_hierarchy()
        hierarchy.warm_region(base=0, size_bytes=1024, dirty=False, ace=True)
        hierarchy.finalize(cycle=100)
        assert hierarchy.dl1.avf(100) == 0.0

    def test_warm_recurrent_marks_tlb(self):
        hierarchy = small_hierarchy()
        hierarchy.warm_region(base=0, size_bytes=4 * 4096, dirty=True, ace=True, recurrent=True)
        hierarchy.finalize(cycle=200)
        assert hierarchy.dtlb.avf(200) == pytest.approx(1.0)

    def test_warm_region_validation(self):
        with pytest.raises(ValueError):
            small_hierarchy().warm_region(base=0, size_bytes=0)

    def test_warm_then_access_hits(self):
        hierarchy = small_hierarchy()
        hierarchy.warm_region(base=0, size_bytes=1024, dirty=True, ace=True)
        outcome = hierarchy.access(960, is_write=False, cycle=5)
        assert outcome.dl1_hit and outcome.tlb_hit


class TestFinalize:
    def test_finalize_closes_all_levels(self):
        hierarchy = small_hierarchy()
        hierarchy.access(0, is_write=True, cycle=1)
        hierarchy.finalize(cycle=50)
        assert hierarchy.dl1.avf(50) > 0.0
        assert hierarchy.dtlb.resident_entry_count() == 0


class TestAccessMany:
    """Bulk access must equal the per-element loop through every level."""

    def test_bulk_equals_loop(self):
        addresses = [index * 72 % (1 << 15) for index in range(150)]
        cycles = [20 + 3 * index for index in range(len(addresses))]
        bulk = small_hierarchy()
        loop = small_hierarchy()
        got = bulk.access_many(addresses, False, cycles)
        want = [loop.access_parts(a, False, c) for a, c in zip(addresses, cycles)]
        assert got == want
        bulk.finalize(2000)
        loop.finalize(2000)
        assert bulk.dl1.lifetime.ace_bit_cycles() == loop.dl1.lifetime.ace_bit_cycles()
        assert bulk.l2.lifetime.ace_bit_cycles() == loop.l2.lifetime.ace_bit_cycles()
        assert bulk.dtlb.ace_entry_cycles == loop.dtlb.ace_entry_cycles

    def test_bulk_scalar_cycle_write_path(self):
        addresses = [index * 64 for index in range(40)]
        bulk = small_hierarchy()
        loop = small_hierarchy()
        got = bulk.access_many(addresses, True, 9)
        want = [loop.access_parts(a, True, 9) for a in addresses]
        assert got == want
