"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import COMMANDS, build_parser, main


class TestParser:
    def test_all_experiments_registered(self):
        expected = {
            "table1", "table2", "table3",
            "figure3", "figure4", "figure5", "figure6", "figure7", "figure8", "figure9",
            "bound", "stressmark", "bench",
        }
        assert expected == set(COMMANDS)

    def test_parser_accepts_known_experiment(self):
        args = build_parser().parse_args(["table1"])
        assert args.experiment == "table1"
        assert args.scale == "quick"

    def test_parser_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure42"])

    def test_parser_accepts_jobs(self):
        args = build_parser().parse_args(["figure6", "--jobs", "4"])
        assert args.jobs == 4
        assert build_parser().parse_args(["table1"]).jobs is None

    def test_jobs_documented_in_help(self):
        assert "--jobs" in build_parser().format_help()

    def test_scale_and_fault_rate_options(self):
        args = build_parser().parse_args(["stressmark", "--scale", "default", "--fault-rates", "rhc"])
        assert args.scale == "default"
        assert args.fault_rates == "rhc"


class TestCheapCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "table3" in output and "figure5" in output

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        output = capsys.readouterr().out
        assert "Table I" in output
        assert "ROB" in output

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        output = capsys.readouterr().out
        assert "Configuration A" in output

    def test_bound(self, capsys):
        assert main(["bound"]) == 0
        output = capsys.readouterr().out
        assert "0.90" in output  # baseline bound ~0.903 (paper: 0.899)
