"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.api import RunResult, RunSpec
from repro.cli import COMMANDS, build_parser, main


class TestParser:
    def test_all_experiments_registered(self):
        expected = {
            "table1", "table2", "table3",
            "figure3", "figure4", "figure5", "figure6", "figure7", "figure8", "figure9",
            "bound", "stressmark", "bench",
        }
        assert expected == set(COMMANDS)

    def test_parser_accepts_known_experiment(self):
        args = build_parser().parse_args(["table1"])
        assert args.experiment == "table1"
        assert args.scale == "quick"

    def test_parser_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure42"])

    def test_version_flag(self, capsys):
        from repro import package_version

        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {package_version()}"

    def test_parser_accepts_jobs(self):
        args = build_parser().parse_args(["figure6", "--jobs", "4"])
        assert args.jobs == 4
        assert build_parser().parse_args(["table1"]).jobs is None

    def test_jobs_documented_in_help(self):
        assert "--jobs" in build_parser().format_help()

    def test_scale_and_fault_rate_options(self):
        args = build_parser().parse_args(["stressmark", "--scale", "default", "--fault-rates", "rhc"])
        assert args.scale == "default"
        assert args.fault_rates == "rhc"


class TestCheapCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "table3" in output and "figure5" in output

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        output = capsys.readouterr().out
        assert "Table I" in output
        assert "ROB" in output

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        output = capsys.readouterr().out
        assert "Configuration A" in output

    def test_bound(self, capsys):
        assert main(["bound"]) == 0
        output = capsys.readouterr().out
        assert "0.90" in output  # baseline bound ~0.903 (paper: 0.899)

    def test_list_shows_registered_components(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "machine configs" in output and "config_a" in output
        assert "fault-rate models" in output and "edr" in output
        assert "workload suites" in output and "mibench" in output
        assert "experiment scales" in output and "paper" in output
        assert "evaluation backends" in output and "process" in output

    def test_list_shows_tracked_structures(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "tracked vulnerable structures" in output
        # Name, group, geometry and fault-rate key per structure, including
        # the flag-gated extensions with their config gate.
        assert "rob" in output and "qs" in output
        assert "sb" in output and "store_buffer_entries (off at baseline)" in output
        assert "l2_tlb" in output and "l2_tlb_entries" in output
        assert "extended" in output  # the extensions-enabled machine config


class TestSpecCommands:
    def test_parser_accepts_run_with_spec_path(self):
        args = build_parser().parse_args(["run", "spec.json", "--out", "result.json"])
        assert args.experiment == "run"
        assert args.spec == "spec.json"
        assert args.out == "result.json"

    def test_run_requires_spec_file(self, capsys):
        with pytest.raises(SystemExit):
            main(["run"])

    def test_run_rejects_missing_file(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["run", str(tmp_path / "nope.json")])

    def test_run_rejects_invalid_spec(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"kind": "simulate", "fault_rates": "rch"}))
        with pytest.raises(SystemExit):
            main(["run", str(path)])
        assert "did you mean 'rhc'" in capsys.readouterr().err

    def test_run_reports_runtime_value_errors_cleanly(self, tmp_path, capsys):
        """Structurally valid specs whose values fail deeper down exit via parser.error."""
        path = tmp_path / "tiny_pop.json"
        path.write_text(json.dumps({"kind": "stressmark", "scale_overrides": {"ga_population": 2}}))
        with pytest.raises(SystemExit):
            main(["run", str(path)])
        assert "Traceback" not in capsys.readouterr().err

    def test_sweep_rejects_leaf_spec(self, tmp_path, capsys):
        path = tmp_path / "leaf.json"
        path.write_text(json.dumps({"kind": "simulate"}))
        with pytest.raises(SystemExit):
            main(["sweep", str(path)])
        assert "expects a sweep spec" in capsys.readouterr().err

    def test_run_executes_spec_and_writes_result(self, tmp_path, capsys):
        spec = {
            "kind": "simulate",
            "name": "cli_smoke",
            "workloads": ["crc32_proxy"],
            "scale_overrides": {"workload_instructions": 1500},
        }
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec))
        out_path = tmp_path / "result.json"
        assert main(["run", str(spec_path), "--out", str(out_path)]) == 0
        output = capsys.readouterr().out
        assert "crc32_proxy" in output
        assert "spec digest:" in output
        result = RunResult.load(out_path)
        assert result.spec_digest == RunSpec.from_json_dict(spec).digest
        assert result.rows[0]["program"] == "crc32_proxy"


class TestStoreCommands:
    SPEC = {
        "kind": "sweep",
        "name": "cli_store",
        "base": {
            "kind": "simulate",
            "name": "wl",
            "workloads": ["crc32_proxy"],
            "scale_overrides": {"workload_instructions": 900},
        },
        "axes": {"fault_rates": ["unit", "rhc"]},
    }

    def _write_spec(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(self.SPEC))
        return str(path)

    def test_parser_accepts_store_resume_shard(self):
        args = build_parser().parse_args(
            ["sweep", "spec.json", "--store", "dir", "--resume", "--shard", "1/2"]
        )
        assert args.store == "dir" and args.resume and args.shard == "1/2"

    def test_shard_requires_store(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", self._write_spec(tmp_path), "--shard", "1/2"])
        assert "--shard needs --store" in capsys.readouterr().err

    def test_shard_requires_sweep_command(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["run", self._write_spec(tmp_path), "--store", str(tmp_path / "s"),
                  "--shard", "1/2"])
        assert "only applies to 'repro sweep'" in capsys.readouterr().err

    @pytest.mark.parametrize("bad", ["1", "0/2", "3/2", "a/b", "1/0"])
    def test_shard_rejects_malformed_values(self, tmp_path, capsys, bad):
        with pytest.raises(SystemExit):
            main(["sweep", self._write_spec(tmp_path), "--store", str(tmp_path / "s"),
                  "--shard", bad])

    def test_resume_requires_store(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["run", self._write_spec(tmp_path), "--resume"])
        assert "--resume needs --store" in capsys.readouterr().err

    def test_merge_requires_destination_and_sources(self, capsys):
        with pytest.raises(SystemExit):
            main(["merge"])
        with pytest.raises(SystemExit):
            main(["merge", "dest-only"])

    def test_merge_rejects_missing_source_cleanly(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["merge", str(tmp_path / "dest"), str(tmp_path / "nope")])
        err = capsys.readouterr().err
        assert "not a result store" in err and "Traceback" not in err

    def test_experiment_commands_reject_positionals(self, capsys):
        with pytest.raises(SystemExit):
            main(["table1", "stray.json", "more"])
        assert "takes no positional arguments" in capsys.readouterr().err

    def test_experiment_commands_reject_shard(self, capsys):
        with pytest.raises(SystemExit):
            main(["table1", "--shard", "1/2"])
        assert "only applies to 'repro sweep'" in capsys.readouterr().err

    def test_experiment_commands_reject_resume_without_store(self, capsys):
        with pytest.raises(SystemExit):
            main(["table1", "--resume"])
        assert "--resume needs --store" in capsys.readouterr().err

    def test_corrupt_store_reported_cleanly(self, tmp_path, capsys):
        spec_path = self._write_spec(tmp_path)
        store_dir = tmp_path / "store"
        store_dir.mkdir()
        (store_dir / "meta.json").write_text("{not json")
        with pytest.raises(SystemExit):
            main(["sweep", spec_path, "--store", str(store_dir)])
        err = capsys.readouterr().err
        assert "corrupt store metadata" in err and "Traceback" not in err

    def test_shard_then_merge_then_replay(self, tmp_path, capsys):
        spec_path = self._write_spec(tmp_path)
        shard1, shard2 = str(tmp_path / "shard1"), str(tmp_path / "shard2")
        assert main(["sweep", spec_path, "--store", shard1, "--shard", "1/2"]) == 0
        assert "shard: 1/2 (1 of 2 runs)" in capsys.readouterr().out
        assert main(["sweep", spec_path, "--store", shard2, "--shard", "2/2"]) == 0
        capsys.readouterr()
        merged = str(tmp_path / "merged")
        assert main(["merge", merged, shard1, shard2]) == 0
        assert "2 result(s) added" in capsys.readouterr().out
        out_path = tmp_path / "result.json"
        assert main(["sweep", spec_path, "--store", merged, "--out", str(out_path)]) == 0
        result = RunResult.load(out_path)
        assert len(result.rows) == 2
        assert {row["fault_rates"] for row in result.rows} == {"unit", "rhc"}
