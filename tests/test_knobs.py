"""Tests for stressmark knobs and the knob space."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.stressmark.knobs import KnobSpace, StressmarkKnobs
from repro.uarch.config import baseline_config, config_a
from repro.utils.rng import DeterministicRng


def valid_knobs(**overrides):
    values = dict(
        loop_size=81,
        num_loads=29,
        num_stores=28,
        num_independent_arithmetic=5,
        num_dependent_on_miss=7,
        avg_dependence_chain_length=2.14,
        dependency_distance=6,
        fraction_long_latency_arithmetic=0.8,
        fraction_reg_reg=0.93,
        random_seed=7,
        use_l2_miss=True,
    )
    values.update(overrides)
    return StressmarkKnobs(**values)


class TestStressmarkKnobs:
    def test_paper_figure5a_values_valid(self):
        knobs = valid_knobs()
        assert knobs.loop_size == 81
        assert knobs.num_loads == 29

    def test_genome_roundtrip(self):
        knobs = valid_knobs()
        assert StressmarkKnobs.from_genome(knobs.to_genome()) == knobs

    def test_derive(self):
        knobs = valid_knobs().derive(num_loads=10)
        assert knobs.num_loads == 10
        assert knobs.num_stores == 28

    def test_as_table_keys(self):
        table = valid_knobs().as_table()
        assert table["Loop Size"] == 81
        assert table["No. of loads"] == 29
        assert table["Code generator"] == "L2 miss"
        assert valid_knobs(use_l2_miss=False).as_table()["Code generator"] == "L2 hit"

    def test_validation_loop_size(self):
        with pytest.raises(ValueError):
            valid_knobs(loop_size=2)

    def test_validation_negative_counts(self):
        with pytest.raises(ValueError):
            valid_knobs(num_loads=-1)

    def test_validation_chain_length(self):
        with pytest.raises(ValueError):
            valid_knobs(avg_dependence_chain_length=0.5)

    def test_validation_dependency_distance(self):
        with pytest.raises(ValueError):
            valid_knobs(dependency_distance=0)

    def test_validation_fractions(self):
        with pytest.raises(ValueError):
            valid_knobs(fraction_reg_reg=1.5)
        with pytest.raises(ValueError):
            valid_knobs(fraction_long_latency_arithmetic=-0.1)


class TestKnobSpace:
    def test_max_loop_size_is_1_2x_rob(self):
        space = KnobSpace(baseline_config())
        assert space.max_loop_size() == round(80 * 1.2)

    def test_config_a_loop_bound_scales(self):
        space = KnobSpace(config_a())
        assert space.max_loop_size() == round(96 * 1.2)

    def test_gene_space_contains_all_knobs(self):
        space = KnobSpace(baseline_config())
        names = set(space.gene_space().names)
        assert {"loop_size", "num_loads", "num_stores", "dependency_distance",
                "fraction_reg_reg", "random_seed", "use_l2_miss"} <= names

    def test_gene_space_without_l2_switch(self):
        space = KnobSpace(baseline_config(), allow_l2_hit_generator=False)
        assert "use_l2_miss" not in space.gene_space().names

    def test_decode_defaults_l2_miss_when_fixed(self):
        space = KnobSpace(baseline_config(), allow_l2_hit_generator=False)
        genome = space.gene_space().sample(DeterministicRng(0))
        knobs = space.decode(genome)
        assert knobs.use_l2_miss is True

    def test_dependent_on_miss_bounded_by_iq(self):
        space = KnobSpace(baseline_config())
        gene = space.gene_space().gene("num_dependent_on_miss")
        assert gene.high <= baseline_config().iq_entries

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_sampled_genomes_decode_to_valid_knobs(self, seed):
        space = KnobSpace(baseline_config())
        genome = space.gene_space().sample(DeterministicRng(seed))
        knobs = space.decode(genome)
        assert space.min_loop_size <= knobs.loop_size <= space.max_loop_size()
        assert 0.0 <= knobs.fraction_reg_reg <= 1.0
        assert knobs.dependency_distance >= 1
