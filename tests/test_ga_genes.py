"""Tests for GA gene descriptors and the gene space."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.ga.genes import BoolGene, FloatGene, GeneSpace, IntGene
from repro.utils.rng import DeterministicRng


RNG = DeterministicRng(11)


class TestIntGene:
    def test_sample_in_bounds(self):
        gene = IntGene("x", 5, 10)
        assert all(5 <= gene.sample(RNG) <= 10 for _ in range(100))

    def test_mutation_stays_in_bounds(self):
        gene = IntGene("x", 0, 20)
        value = 10
        for _ in range(100):
            value = gene.mutate(value, RNG)
            assert 0 <= value <= 20

    def test_crossover_in_bounds(self):
        gene = IntGene("x", 0, 100)
        for _ in range(100):
            child = gene.crossover(10, 90, RNG)
            assert 0 <= child <= 100

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            IntGene("x", 10, 5)

    @given(low=st.integers(-50, 50), span=st.integers(0, 100), value=st.integers(-200, 200))
    def test_mutation_clamps_any_value(self, low, span, value):
        gene = IntGene("x", low, low + span)
        assert low <= gene.mutate(value, DeterministicRng(0)) <= low + span


class TestFloatGene:
    def test_sample_in_bounds(self):
        gene = FloatGene("f", 0.0, 1.0)
        assert all(0.0 <= gene.sample(RNG) <= 1.0 for _ in range(100))

    def test_mutation_stays_in_bounds(self):
        gene = FloatGene("f", 0.0, 1.0)
        value = 0.5
        for _ in range(200):
            value = gene.mutate(value, RNG)
            assert 0.0 <= value <= 1.0

    def test_crossover_between_parents_or_blend(self):
        gene = FloatGene("f", 0.0, 10.0)
        for _ in range(100):
            child = gene.crossover(2.0, 8.0, RNG)
            assert 0.0 <= child <= 10.0

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            FloatGene("f", 1.0, 0.0)


class TestBoolGene:
    def test_sample_both_values(self):
        gene = BoolGene("b")
        samples = {gene.sample(RNG) for _ in range(50)}
        assert samples == {True, False}

    def test_mutation_flips(self):
        gene = BoolGene("b")
        assert gene.mutate(True, RNG) is False
        assert gene.mutate(False, RNG) is True

    def test_crossover_picks_parent(self):
        gene = BoolGene("b")
        assert gene.crossover(True, True, RNG) is True


class TestGeneSpace:
    def _space(self):
        return GeneSpace([IntGene("a", 0, 10), FloatGene("b", 0.0, 1.0), BoolGene("c")])

    def test_names(self):
        assert self._space().names == ["a", "b", "c"]

    def test_len_and_iter(self):
        space = self._space()
        assert len(space) == 3
        assert [gene.name for gene in space] == ["a", "b", "c"]

    def test_sample_complete_genome(self):
        genome = self._space().sample(RNG)
        assert set(genome) == {"a", "b", "c"}

    def test_lookup(self):
        assert self._space().gene("a").name == "a"

    def test_validate_accepts_complete(self):
        space = self._space()
        space.validate({"a": 1, "b": 0.5, "c": True})

    def test_validate_rejects_missing(self):
        with pytest.raises(ValueError):
            self._space().validate({"a": 1})

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError):
            GeneSpace([IntGene("a", 0, 1), IntGene("a", 0, 2)])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            GeneSpace([])
