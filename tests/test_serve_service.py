"""Service-level tests: ReproServer + ServeClient over a real TCP socket.

Most tests drive the daemon against a *fake* session whose ``run`` blocks
on an event the test controls, so queueing, deduplication, backpressure and
cancellation are exercised deterministically.  The final tests use a real
:class:`~repro.api.session.Session` at tiny scale to prove the remote
result is byte-identical to a local run.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.api.session import Session
from repro.api.spec import RunResult, RunSpec
from repro.parallel.resilience import TaskFailedError
from repro.serve.client import (
    RemoteError,
    RemoteRunError,
    ServeBusyError,
    ServeClient,
    wait_until_ready,
)
from repro.serve.server import ReproServer
from repro.store.result_store import _strip_volatile


def _spec(name: str) -> dict:
    return {"kind": "simulate", "name": name}


class FakeSession:
    """Session stand-in with a controllable, observable ``run``."""

    def __init__(self, gate: threading.Event | None = None) -> None:
        self.gate = gate  # run() blocks here when set
        self.ran: list[str] = []
        self.fail_names: dict[str, Exception] = {}
        self.closed = 0
        self.store = None

    def run(self, spec: RunSpec) -> RunResult:
        if self.gate is not None:
            assert self.gate.wait(timeout=30.0), "test gate never opened"
        self.ran.append(spec.name)
        error = self.fail_names.get(spec.name)
        if error is not None:
            raise error
        return RunResult(spec=spec, rows=[{"name": spec.name, "value": 1.5}])

    def close(self) -> None:
        self.closed += 1


@pytest.fixture()
def gated():
    """A started server whose evaluation thread blocks until gate.set()."""
    gate = threading.Event()
    session = FakeSession(gate=gate)
    server = ReproServer(session, port=0, queue_limit=4)
    server.start()
    try:
        yield server, session, gate
    finally:
        gate.set()
        server.stop()
        server.join(timeout=30.0)


def _client(server: ReproServer, client_id: str = "test") -> ServeClient:
    return ServeClient(host="127.0.0.1", port=server.port, timeout=30.0, client_id=client_id)


def _wait_state(client: ServeClient, job_id: str, state: str, timeout: float = 10.0) -> dict:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status = client.status(job_id)
        if status["state"] == state:
            return status
        time.sleep(0.01)
    raise AssertionError(f"job {job_id} never reached {state!r} (last: {status})")


# ---------------------------------------------------------------- liveness


def test_ping_reports_versions(gated):
    server, _, _ = gated
    from repro import package_version
    from repro.serve.protocol import PROTOCOL_VERSION

    with _client(server) as client:
        info = client.ping()
    assert info["server_version"] == package_version()
    assert info["protocol_version"] == PROTOCOL_VERSION
    assert info["uptime_seconds"] >= 0
    assert info["store_attached"] is False


def test_wait_until_ready_and_timeout(gated):
    server, _, _ = gated
    assert wait_until_ready(f"127.0.0.1:{server.port}", timeout=10.0)["ok"]
    with pytest.raises(TimeoutError):
        wait_until_ready("127.0.0.1:1", timeout=0.3)


def test_unknown_verb_is_rejected(gated):
    server, _, _ = gated
    with _client(server) as client:
        with pytest.raises(RemoteError) as excinfo:
            client._checked(client._request({"verb": "frobnicate"}))
    assert excinfo.value.code == "bad_frame"


# ------------------------------------------------------------- submit/queue


def test_submit_queue_run_result_cycle(gated):
    server, session, gate = gated
    with _client(server) as client:
        response = client.submit(_spec("cycle"))
        assert response["state"] == "queued" and response["source"] == "queue"
        job_id = response["job_id"]
        _wait_state(client, job_id, "running")
        gate.set()
        result = client.wait(job_id)
    assert isinstance(result, RunResult)
    assert result.rows == [{"name": "cycle", "value": 1.5}]
    assert session.ran == ["cycle"]


def test_run_blocking_mirror(gated):
    server, _, gate = gated
    gate.set()
    with _client(server) as client:
        result = client.run(_spec("mirror"))
    assert result.spec.name == "mirror"


def test_invalid_spec_rejected_without_queueing(gated):
    server, session, _ = gated
    with _client(server) as client:
        with pytest.raises(RemoteError) as excinfo:
            client._checked(client._request({
                "verb": "submit", "spec": {"kind": "simulate", "config": "no_such_config"},
            }))
        assert excinfo.value.code == "invalid_spec"
        with pytest.raises(RemoteError) as excinfo:
            client._checked(client._request({"verb": "submit", "spec": "not a dict"}))
        assert excinfo.value.code == "invalid_spec"
    assert session.ran == []


def test_inflight_dedup_one_evaluation(gated):
    server, session, gate = gated
    with _client(server, "one") as first, _client(server, "two") as second:
        blocker = first.submit(_spec("blocker"))
        _wait_state(first, blocker["job_id"], "running")
        response_a = first.submit(_spec("same"))
        response_b = second.submit(_spec("same"))
        assert response_a["job_id"] == response_b["job_id"]
        assert response_b["source"] == "inflight"
        gate.set()
        result_a = first.wait(response_a["job_id"])
        result_b = second.wait(response_b["job_id"])
    assert result_a.to_json_dict() == result_b.to_json_dict()
    assert session.ran.count("same") == 1
    with _client(server) as client:
        assert client.stats()["counters"]["dedup_hits"] == 1


def test_backpressure_queue_full_retry_after(gated):
    server, _, gate = gated  # queue_limit=4
    with _client(server) as client:
        blocker = client.submit(_spec("blocker"))
        _wait_state(client, blocker["job_id"], "running")
        for index in range(4):
            client.submit(_spec(f"fill-{index}"))
        with pytest.raises(ServeBusyError) as excinfo:
            client.submit(_spec("overflow"))
        assert excinfo.value.retry_after > 0
        gate.set()
        # run() retries through the backpressure window and completes.
        result = client.run(_spec("overflow"), busy_deadline=30.0)
    assert result.spec.name == "overflow"


def test_cancel_queued_job_and_result_error(gated):
    server, session, gate = gated
    with _client(server) as client:
        blocker = client.submit(_spec("blocker"))
        _wait_state(client, blocker["job_id"], "running")
        queued = client.submit(_spec("victim"))
        response = client.cancel(queued["job_id"])
        assert response["cancelled"] and response["state"] == "cancelled"
        with pytest.raises(RemoteRunError) as excinfo:
            client.result(queued["job_id"])
        assert excinfo.value.code == "job_cancelled"
        gate.set()
        client.wait(blocker["job_id"])
    assert "victim" not in session.ran


def test_cancel_deduplicated_job_keeps_other_waiter(gated):
    server, session, gate = gated
    with _client(server, "one") as first, _client(server, "two") as second:
        blocker = first.submit(_spec("blocker"))
        _wait_state(first, blocker["job_id"], "running")
        shared_a = first.submit(_spec("shared"))
        second.submit(_spec("shared"))
        response = first.cancel(shared_a["job_id"])
        assert not response["cancelled"]
        gate.set()
        result = second.wait(shared_a["job_id"])
    assert result.spec.name == "shared"
    assert session.ran.count("shared") == 1


def test_round_robin_fairness_across_clients(gated):
    server, session, gate = gated
    with _client(server, "hog") as hog, _client(server, "small") as small:
        blocker = hog.submit(_spec("blocker"))
        _wait_state(hog, blocker["job_id"], "running")
        hog_jobs = [hog.submit(_spec(f"hog-{i}")) for i in range(3)]
        small_job = small.submit(_spec("small-1"))
        # The small client's single job runs right after the hog's first:
        # live positions (via status) reflect the round-robin deal.
        assert small.status(small_job["job_id"])["position"] == 1
        assert [hog.status(j["job_id"])["position"] for j in hog_jobs] == [0, 2, 3]
        gate.set()
        small.wait(small_job["job_id"])
    assert session.ran.index("small-1") < session.ran.index("hog-1")


# --------------------------------------------------------------- failures


def test_failed_job_raises_remote_run_error(gated):
    server, session, gate = gated
    session.fail_names["doomed"] = ValueError("synthetic failure")
    gate.set()
    with _client(server) as client:
        with pytest.raises(RemoteRunError) as excinfo:
            client.run(_spec("doomed"))
        assert excinfo.value.code == "job_failed"
        assert "synthetic failure" in str(excinfo.value)
        assert client.stats()["counters"]["failed"] == 1
    # The daemon survives the failure and keeps serving.
    with _client(server) as client:
        assert client.run(_spec("after")).spec.name == "after"


def test_quarantined_job_maps_to_its_own_code(gated):
    server, session, gate = gated
    session.fail_names["toxic"] = TaskFailedError("every retry failed")
    gate.set()
    with _client(server) as client:
        with pytest.raises(RemoteRunError) as excinfo:
            client.run(_spec("toxic"))
        assert excinfo.value.code == "job_quarantined"
        assert excinfo.value.state == "quarantined"


def test_unknown_job_code(gated):
    server, _, _ = gated
    with _client(server) as client:
        with pytest.raises(RemoteError) as excinfo:
            client.status("job-404")
        assert excinfo.value.code == "unknown_job"


# --------------------------------------------------------------- shutdown


def test_shutdown_cancels_queue_and_closes_session():
    gate = threading.Event()
    session = FakeSession(gate=gate)
    server = ReproServer(session, port=0)
    server.start()
    with _client(server) as client:
        blocker = client.submit(_spec("blocker"))
        _wait_state(client, blocker["job_id"], "running")
        queued = client.submit(_spec("queued"))
        assert client.shutdown()["stopping"]
        # New work is refused while stopping.
        with pytest.raises(RemoteError) as excinfo:
            client.submit(_spec("late"))
        assert excinfo.value.code == "shutting_down"
    gate.set()
    server.join(timeout=30.0)
    assert session.closed == 1  # idempotent close ran exactly once
    table_job = server.table.get(queued["job_id"])
    assert table_job.state == "cancelled"
    assert session.ran == ["blocker"]  # the running job finished cleanly


def test_stats_includes_store_hits_counter(gated):
    server, _, gate = gated
    gate.set()
    with _client(server) as client:
        client.run(_spec("one"))
        stats = client.stats()
    assert stats["counters"]["store_hits"] == 0
    assert stats["counters"]["completed"] == 1
    assert stats["queue_limit"] == 4


# ------------------------------------------------ durability: journal+replay


class FakeStore:
    """Digest-keyed store stand-in (only what the server touches)."""

    def __init__(self) -> None:
        self.results: dict[str, RunResult] = {}

    def get(self, digest: str):
        return self.results.get(digest)

    def __len__(self) -> int:
        return len(self.results)


def _digest(spec: dict) -> str:
    return RunSpec.from_json_dict(spec).digest


def test_journal_replay_reenqueues_lost_jobs(tmp_path):
    from repro.serve.journal import JobJournal

    journal = JobJournal(tmp_path / "journal.jsonl")
    # The previous daemon died with one job running and one queued.
    for name in ("lost-running", "lost-queued"):
        spec = RunSpec.from_json_dict(_spec(name)).to_json_dict()
        journal.append_submit(_digest(_spec(name)), spec, "crashed-client")
    journal.append_start(_digest(_spec("lost-running")))

    session = FakeSession()
    server = ReproServer(session, port=0, journal=journal)
    server.start()
    try:
        assert server.restored_jobs == 2
        deadline = time.monotonic() + 10.0
        while set(session.ran) != {"lost-running", "lost-queued"}:
            assert time.monotonic() < deadline, f"replayed jobs never ran: {session.ran}"
            time.sleep(0.01)
        with _client(server) as client:
            assert client.stats()["counters"]["restored"] == 2
    finally:
        server.stop()
        server.join(timeout=30.0)
    # Everything terminal again: a restart now replays nothing.
    assert journal.outstanding() == []


def test_journal_replay_short_circuits_store_hits(tmp_path):
    from repro.serve.journal import JobJournal

    journal = JobJournal(tmp_path / "journal.jsonl")
    done_spec = RunSpec.from_json_dict(_spec("already-done"))
    journal.append_submit(done_spec.digest, done_spec.to_json_dict(), "c")
    session = FakeSession()
    session.store = FakeStore()
    session.store.results[done_spec.digest] = RunResult(spec=done_spec, rows=[])
    server = ReproServer(session, port=0, journal=journal)
    server.start()
    try:
        assert server.restored_jobs == 0  # answered from the store, not re-run
        assert journal.outstanding() == []
    finally:
        server.stop()
        server.join(timeout=30.0)
    assert session.ran == []


def test_submit_is_journaled_before_ack_and_drain_persists_queue(tmp_path):
    from repro.serve.journal import JobJournal

    journal = JobJournal(tmp_path / "journal.jsonl")
    gate = threading.Event()
    session = FakeSession(gate=gate)
    server = ReproServer(session, port=0, queue_limit=8, journal=journal)
    server.start()
    try:
        with _client(server) as client:
            blocker = client.submit(_spec("blocker"))
            _wait_state(client, blocker["job_id"], "running")
            for index in range(3):
                client.submit(_spec(f"drain-{index}"))
            # Acknowledged work is already durable, pre-drain.
            assert len(journal.outstanding()) == 4
            client.shutdown(drain=True)
    finally:
        gate.set()
        server.join(timeout=30.0)
    # The running blocker finished (journaled terminal); the queued three
    # survive as outstanding for the next daemon.
    outstanding = {entry.digest for entry in journal.outstanding()}
    assert outstanding == {_digest(_spec(f"drain-{i}")) for i in range(3)}

    # A fresh daemon on the same journal replays exactly those jobs.
    gate2 = threading.Event()
    gate2.set()
    session2 = FakeSession(gate=gate2)
    server2 = ReproServer(session2, port=0, journal=journal)
    server2.start()
    try:
        assert server2.restored_jobs == 3
        deadline = time.monotonic() + 10.0
        while len(session2.ran) < 3:
            assert time.monotonic() < deadline
            time.sleep(0.01)
        assert sorted(session2.ran) == [f"drain-{i}" for i in range(3)]
    finally:
        server2.stop()
        server2.join(timeout=30.0)
    assert journal.outstanding() == []


def test_shutdown_without_drain_cancels_and_journals(tmp_path):
    from repro.serve.journal import JobJournal

    journal = JobJournal(tmp_path / "journal.jsonl")
    gate = threading.Event()
    session = FakeSession(gate=gate)
    server = ReproServer(session, port=0, journal=journal)
    server.start()
    try:
        with _client(server) as client:
            blocker = client.submit(_spec("blocker"))
            _wait_state(client, blocker["job_id"], "running")
            client.submit(_spec("victim"))
            client.shutdown(drain=False)
    finally:
        gate.set()
        server.join(timeout=30.0)
    # Cancelled queue + finished blocker are all terminal: nothing replays.
    assert journal.outstanding() == []


# ------------------------------------------------------ watchdog + deadlines


class HangingSession(FakeSession):
    """Run hangs forever for marked names (watchdog fodder)."""

    def __init__(self) -> None:
        super().__init__(gate=None)
        self.hang_names: set[str] = set()
        self.hung = threading.Event()

    def run(self, spec: RunSpec) -> RunResult:
        if spec.name in self.hang_names:
            self.hung.set()
            time.sleep(3600.0)
        return super().run(spec)


def test_watchdog_quarantines_hung_eval_and_loop_survives():
    session = HangingSession()
    session.hang_names.add("wedged")
    server = ReproServer(session, port=0, job_timeout=0.4)
    server.start()
    try:
        with _client(server) as client:
            with pytest.raises(RemoteRunError) as excinfo:
                client.run(_spec("wedged"))
            assert excinfo.value.code == "job_quarantined"
            assert "watchdog" in str(excinfo.value)
            # The eval loop survived the abandoned thread: next job runs.
            assert client.run(_spec("healthy")).spec.name == "healthy"
            assert client.stats()["counters"]["watchdog_fired"] == 1
    finally:
        server.stop()
        server.join(timeout=30.0)
    assert server.watchdog_fired == 1


def test_spec_task_timeout_beats_server_job_timeout():
    session = HangingSession()
    session.hang_names.add("slow-spec")
    # Server-wide deadline is generous; the spec's own task_timeout is not.
    server = ReproServer(session, port=0, job_timeout=3600.0)
    server.start()
    try:
        with _client(server) as client:
            spec = dict(_spec("slow-spec"), task_timeout=0.4)
            start = time.monotonic()
            with pytest.raises(RemoteRunError) as excinfo:
                client.run(spec)
            assert excinfo.value.code == "job_quarantined"
            assert time.monotonic() - start < 30.0  # not the 3600s default
    finally:
        server.stop()
        server.join(timeout=30.0)


# --------------------------------------------------- heartbeats + failover


def test_watch_emits_heartbeats_while_nothing_changes(gated):
    server, _, gate = gated
    server.heartbeat_seconds = 0.2
    from repro.serve.protocol import recv_frame, send_frame

    with _client(server) as client:
        blocker = client.submit(_spec("blocker"))
        _wait_state(client, blocker["job_id"], "running")
        queued = client.submit(_spec("parked"))
        sock = client._connection()
        send_frame(sock, {"verb": "watch", "job_id": queued["job_id"]})
        frames = [recv_frame(sock) for _ in range(4)]
        heartbeats = [f for f in frames if f.get("heartbeat")]
        assert heartbeats, f"no heartbeat among {frames}"
        assert all(f["ok"] and not f["final"] for f in heartbeats)
        client._drop_connection()  # abandon the stream mid-watch
        gate.set()
        assert client.wait(queued["job_id"]).spec.name == "parked"


def test_wait_reopens_dropped_watch_stream(gated):
    server, _, gate = gated
    with _client(server) as client:
        blocker = client.submit(_spec("blocker"))
        _wait_state(client, blocker["job_id"], "running")
        queued = client.submit(_spec("resumed"))
        job_id = queued["job_id"]

        def sever_then_release() -> None:
            time.sleep(0.3)
            # Sever the client's live watch socket out from under it.  (No
            # lock here: _watch_stream holds it for the whole stream.)
            sock = client._sock
            if sock is not None:
                import socket as socketlib
                try:
                    sock.shutdown(socketlib.SHUT_RDWR)
                except OSError:
                    pass
            time.sleep(0.1)
            gate.set()

        saboteur = threading.Thread(target=sever_then_release, daemon=True)
        saboteur.start()
        result = client.wait(job_id)  # survives the severed stream
        saboteur.join(timeout=10.0)
    assert result.spec.name == "resumed"


def test_client_fails_over_to_second_endpoint():
    gate = threading.Event()
    gate.set()
    session = FakeSession(gate=gate)
    server = ReproServer(session, port=0)
    server.start()
    try:
        # A dead endpoint first: connect fails over to the live daemon.
        dead = "127.0.0.1:1"
        with ServeClient(f"{dead},127.0.0.1:{server.port}", timeout=10.0) as client:
            assert client.run(_spec("failover")).spec.name == "failover"
            assert client.port == server.port  # rotated to the live endpoint
    finally:
        server.stop()
        server.join(timeout=30.0)


def test_wait_resubmits_by_digest_after_daemon_restart(tmp_path):
    # Daemon A dies with the job queued; the client's wait() fails over to
    # daemon B (same store+journal semantics via resubmit-by-digest).
    gate_a = threading.Event()
    session_a = FakeSession(gate=gate_a)
    server_a = ReproServer(session_a, port=0)
    server_a.start()

    gate_b = threading.Event()
    gate_b.set()
    session_b = FakeSession(gate=gate_b)
    server_b = ReproServer(session_b, port=0)
    server_b.start()
    try:
        spec = _spec("resubmitted")
        with ServeClient(f"127.0.0.1:{server_a.port},127.0.0.1:{server_b.port}",
                         timeout=10.0) as client:
            blocker = client.submit(_spec("blocker"))
            _wait_state(client, blocker["job_id"], "running")
            queued = client.submit(spec)
            # Kill daemon A abruptly: its listener dies, queue is lost.
            server_a._listener.close()
            server_a._stopping.set()
            result = client.wait(str(queued["job_id"]), spec=spec)
        assert result.spec.name == "resubmitted"
        assert session_b.ran == ["resubmitted"]
    finally:
        gate_a.set()
        for server in (server_a, server_b):
            server.stop()
            server.join(timeout=30.0)


# ------------------------------------------------- real session, real store


@pytest.fixture(scope="module")
def tiny_spec() -> dict:
    return {
        "kind": "simulate",
        "name": "serve-tiny",
        "workloads": ["403.gcc_proxy"],
        "scale": "quick",
        "scale_overrides": {"workload_instructions": 1500},
    }


def test_remote_result_byte_identical_to_local(tmp_path, tiny_spec):
    server = ReproServer(Session(store=tmp_path / "store"), port=0)
    with server:
        with _client(server) as client:
            remote_first = client.run(tiny_spec)
            remote_again = client.run(tiny_spec)  # served from the store
            stats = client.stats()
    assert stats["counters"]["store_hits"] == 1
    assert stats["counters"]["submitted"] == 1  # the duplicate never queued
    with Session() as session:
        local = session.run(dict(tiny_spec))
    stripped = _strip_volatile(local.to_json_dict())
    assert _strip_volatile(remote_first.to_json_dict()) == stripped
    # Store answers are the *original* result verbatim, timing included.
    assert remote_again.to_json_dict() == remote_first.to_json_dict()


def test_store_hit_submit_returns_result_inline(tmp_path, tiny_spec):
    server = ReproServer(Session(store=tmp_path / "store"), port=0)
    with server:
        with _client(server) as client:
            client.run(tiny_spec)
            response = client.submit(tiny_spec)
    assert response["source"] == "store"
    assert response["job_id"] is None
    assert response["result"]["rows"]
