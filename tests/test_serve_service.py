"""Service-level tests: ReproServer + ServeClient over a real TCP socket.

Most tests drive the daemon against a *fake* session whose ``run`` blocks
on an event the test controls, so queueing, deduplication, backpressure and
cancellation are exercised deterministically.  The final tests use a real
:class:`~repro.api.session.Session` at tiny scale to prove the remote
result is byte-identical to a local run.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.api.session import Session
from repro.api.spec import RunResult, RunSpec
from repro.parallel.resilience import TaskFailedError
from repro.serve.client import (
    RemoteError,
    RemoteRunError,
    ServeBusyError,
    ServeClient,
    wait_until_ready,
)
from repro.serve.server import ReproServer
from repro.store.result_store import _strip_volatile


def _spec(name: str) -> dict:
    return {"kind": "simulate", "name": name}


class FakeSession:
    """Session stand-in with a controllable, observable ``run``."""

    def __init__(self, gate: threading.Event | None = None) -> None:
        self.gate = gate  # run() blocks here when set
        self.ran: list[str] = []
        self.fail_names: dict[str, Exception] = {}
        self.closed = 0
        self.store = None

    def run(self, spec: RunSpec) -> RunResult:
        if self.gate is not None:
            assert self.gate.wait(timeout=30.0), "test gate never opened"
        self.ran.append(spec.name)
        error = self.fail_names.get(spec.name)
        if error is not None:
            raise error
        return RunResult(spec=spec, rows=[{"name": spec.name, "value": 1.5}])

    def close(self) -> None:
        self.closed += 1


@pytest.fixture()
def gated():
    """A started server whose evaluation thread blocks until gate.set()."""
    gate = threading.Event()
    session = FakeSession(gate=gate)
    server = ReproServer(session, port=0, queue_limit=4)
    server.start()
    try:
        yield server, session, gate
    finally:
        gate.set()
        server.stop()
        server.join(timeout=30.0)


def _client(server: ReproServer, client_id: str = "test") -> ServeClient:
    return ServeClient(host="127.0.0.1", port=server.port, timeout=30.0, client_id=client_id)


def _wait_state(client: ServeClient, job_id: str, state: str, timeout: float = 10.0) -> dict:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status = client.status(job_id)
        if status["state"] == state:
            return status
        time.sleep(0.01)
    raise AssertionError(f"job {job_id} never reached {state!r} (last: {status})")


# ---------------------------------------------------------------- liveness


def test_ping_reports_versions(gated):
    server, _, _ = gated
    from repro import package_version
    from repro.serve.protocol import PROTOCOL_VERSION

    with _client(server) as client:
        info = client.ping()
    assert info["server_version"] == package_version()
    assert info["protocol_version"] == PROTOCOL_VERSION
    assert info["uptime_seconds"] >= 0
    assert info["store_attached"] is False


def test_wait_until_ready_and_timeout(gated):
    server, _, _ = gated
    assert wait_until_ready(f"127.0.0.1:{server.port}", timeout=10.0)["ok"]
    with pytest.raises(TimeoutError):
        wait_until_ready("127.0.0.1:1", timeout=0.3)


def test_unknown_verb_is_rejected(gated):
    server, _, _ = gated
    with _client(server) as client:
        with pytest.raises(RemoteError) as excinfo:
            client._checked(client._request({"verb": "frobnicate"}))
    assert excinfo.value.code == "bad_frame"


# ------------------------------------------------------------- submit/queue


def test_submit_queue_run_result_cycle(gated):
    server, session, gate = gated
    with _client(server) as client:
        response = client.submit(_spec("cycle"))
        assert response["state"] == "queued" and response["source"] == "queue"
        job_id = response["job_id"]
        _wait_state(client, job_id, "running")
        gate.set()
        result = client.wait(job_id)
    assert isinstance(result, RunResult)
    assert result.rows == [{"name": "cycle", "value": 1.5}]
    assert session.ran == ["cycle"]


def test_run_blocking_mirror(gated):
    server, _, gate = gated
    gate.set()
    with _client(server) as client:
        result = client.run(_spec("mirror"))
    assert result.spec.name == "mirror"


def test_invalid_spec_rejected_without_queueing(gated):
    server, session, _ = gated
    with _client(server) as client:
        with pytest.raises(RemoteError) as excinfo:
            client._checked(client._request({
                "verb": "submit", "spec": {"kind": "simulate", "config": "no_such_config"},
            }))
        assert excinfo.value.code == "invalid_spec"
        with pytest.raises(RemoteError) as excinfo:
            client._checked(client._request({"verb": "submit", "spec": "not a dict"}))
        assert excinfo.value.code == "invalid_spec"
    assert session.ran == []


def test_inflight_dedup_one_evaluation(gated):
    server, session, gate = gated
    with _client(server, "one") as first, _client(server, "two") as second:
        blocker = first.submit(_spec("blocker"))
        _wait_state(first, blocker["job_id"], "running")
        response_a = first.submit(_spec("same"))
        response_b = second.submit(_spec("same"))
        assert response_a["job_id"] == response_b["job_id"]
        assert response_b["source"] == "inflight"
        gate.set()
        result_a = first.wait(response_a["job_id"])
        result_b = second.wait(response_b["job_id"])
    assert result_a.to_json_dict() == result_b.to_json_dict()
    assert session.ran.count("same") == 1
    with _client(server) as client:
        assert client.stats()["counters"]["dedup_hits"] == 1


def test_backpressure_queue_full_retry_after(gated):
    server, _, gate = gated  # queue_limit=4
    with _client(server) as client:
        blocker = client.submit(_spec("blocker"))
        _wait_state(client, blocker["job_id"], "running")
        for index in range(4):
            client.submit(_spec(f"fill-{index}"))
        with pytest.raises(ServeBusyError) as excinfo:
            client.submit(_spec("overflow"))
        assert excinfo.value.retry_after > 0
        gate.set()
        # run() retries through the backpressure window and completes.
        result = client.run(_spec("overflow"), busy_deadline=30.0)
    assert result.spec.name == "overflow"


def test_cancel_queued_job_and_result_error(gated):
    server, session, gate = gated
    with _client(server) as client:
        blocker = client.submit(_spec("blocker"))
        _wait_state(client, blocker["job_id"], "running")
        queued = client.submit(_spec("victim"))
        response = client.cancel(queued["job_id"])
        assert response["cancelled"] and response["state"] == "cancelled"
        with pytest.raises(RemoteRunError) as excinfo:
            client.result(queued["job_id"])
        assert excinfo.value.code == "job_cancelled"
        gate.set()
        client.wait(blocker["job_id"])
    assert "victim" not in session.ran


def test_cancel_deduplicated_job_keeps_other_waiter(gated):
    server, session, gate = gated
    with _client(server, "one") as first, _client(server, "two") as second:
        blocker = first.submit(_spec("blocker"))
        _wait_state(first, blocker["job_id"], "running")
        shared_a = first.submit(_spec("shared"))
        second.submit(_spec("shared"))
        response = first.cancel(shared_a["job_id"])
        assert not response["cancelled"]
        gate.set()
        result = second.wait(shared_a["job_id"])
    assert result.spec.name == "shared"
    assert session.ran.count("shared") == 1


def test_round_robin_fairness_across_clients(gated):
    server, session, gate = gated
    with _client(server, "hog") as hog, _client(server, "small") as small:
        blocker = hog.submit(_spec("blocker"))
        _wait_state(hog, blocker["job_id"], "running")
        hog_jobs = [hog.submit(_spec(f"hog-{i}")) for i in range(3)]
        small_job = small.submit(_spec("small-1"))
        # The small client's single job runs right after the hog's first:
        # live positions (via status) reflect the round-robin deal.
        assert small.status(small_job["job_id"])["position"] == 1
        assert [hog.status(j["job_id"])["position"] for j in hog_jobs] == [0, 2, 3]
        gate.set()
        small.wait(small_job["job_id"])
    assert session.ran.index("small-1") < session.ran.index("hog-1")


# --------------------------------------------------------------- failures


def test_failed_job_raises_remote_run_error(gated):
    server, session, gate = gated
    session.fail_names["doomed"] = ValueError("synthetic failure")
    gate.set()
    with _client(server) as client:
        with pytest.raises(RemoteRunError) as excinfo:
            client.run(_spec("doomed"))
        assert excinfo.value.code == "job_failed"
        assert "synthetic failure" in str(excinfo.value)
        assert client.stats()["counters"]["failed"] == 1
    # The daemon survives the failure and keeps serving.
    with _client(server) as client:
        assert client.run(_spec("after")).spec.name == "after"


def test_quarantined_job_maps_to_its_own_code(gated):
    server, session, gate = gated
    session.fail_names["toxic"] = TaskFailedError("every retry failed")
    gate.set()
    with _client(server) as client:
        with pytest.raises(RemoteRunError) as excinfo:
            client.run(_spec("toxic"))
        assert excinfo.value.code == "job_quarantined"
        assert excinfo.value.state == "quarantined"


def test_unknown_job_code(gated):
    server, _, _ = gated
    with _client(server) as client:
        with pytest.raises(RemoteError) as excinfo:
            client.status("job-404")
        assert excinfo.value.code == "unknown_job"


# --------------------------------------------------------------- shutdown


def test_shutdown_cancels_queue_and_closes_session():
    gate = threading.Event()
    session = FakeSession(gate=gate)
    server = ReproServer(session, port=0)
    server.start()
    with _client(server) as client:
        blocker = client.submit(_spec("blocker"))
        _wait_state(client, blocker["job_id"], "running")
        queued = client.submit(_spec("queued"))
        assert client.shutdown()["stopping"]
        # New work is refused while stopping.
        with pytest.raises(RemoteError) as excinfo:
            client.submit(_spec("late"))
        assert excinfo.value.code == "shutting_down"
    gate.set()
    server.join(timeout=30.0)
    assert session.closed == 1  # idempotent close ran exactly once
    table_job = server.table.get(queued["job_id"])
    assert table_job.state == "cancelled"
    assert session.ran == ["blocker"]  # the running job finished cleanly


def test_stats_includes_store_hits_counter(gated):
    server, _, gate = gated
    gate.set()
    with _client(server) as client:
        client.run(_spec("one"))
        stats = client.stats()
    assert stats["counters"]["store_hits"] == 0
    assert stats["counters"]["completed"] == 1
    assert stats["queue_limit"] == 4


# ------------------------------------------------- real session, real store


@pytest.fixture(scope="module")
def tiny_spec() -> dict:
    return {
        "kind": "simulate",
        "name": "serve-tiny",
        "workloads": ["403.gcc_proxy"],
        "scale": "quick",
        "scale_overrides": {"workload_instructions": 1500},
    }


def test_remote_result_byte_identical_to_local(tmp_path, tiny_spec):
    server = ReproServer(Session(store=tmp_path / "store"), port=0)
    with server:
        with _client(server) as client:
            remote_first = client.run(tiny_spec)
            remote_again = client.run(tiny_spec)  # served from the store
            stats = client.stats()
    assert stats["counters"]["store_hits"] == 1
    assert stats["counters"]["submitted"] == 1  # the duplicate never queued
    with Session() as session:
        local = session.run(dict(tiny_spec))
    stripped = _strip_volatile(local.to_json_dict())
    assert _strip_volatile(remote_first.to_json_dict()) == stripped
    # Store answers are the *original* result verbatim, timing included.
    assert remote_again.to_json_dict() == remote_first.to_json_dict()


def test_store_hit_submit_returns_result_inline(tmp_path, tiny_spec):
    server = ReproServer(Session(store=tmp_path / "store"), port=0)
    with server:
        with _client(server) as client:
            client.run(tiny_spec)
            response = client.submit(tiny_spec)
    assert response["source"] == "store"
    assert response["job_id"] is None
    assert response["result"]["rows"]
