"""Tests for the Program container and warm-up regions."""

from __future__ import annotations

import pytest

from repro.isa.instructions import make_alu, make_branch, make_load, make_nop, make_store
from repro.isa.memoryref import FixedPattern, StridedPattern
from repro.isa.program import BranchBehavior, DynamicOp, Program, WarmupRegion


PATTERN = FixedPattern(address=0)


def simple_body():
    return [
        make_load(1, PATTERN, srcs=[2]),
        make_alu(3, [1]),
        make_store(PATTERN, srcs=[3]),
        make_branch(srcs=[3]),
    ]


class TestProgramValidation:
    def test_requires_body(self):
        with pytest.raises(ValueError):
            Program(name="empty", body=[])

    def test_requires_positive_iterations(self):
        with pytest.raises(ValueError):
            Program(name="p", body=simple_body(), iterations=0)

    def test_pointer_chase_must_be_load(self):
        with pytest.raises(ValueError):
            Program(name="p", body=simple_body(), pointer_chase_indices=frozenset({1}))

    def test_pointer_chase_index_range(self):
        with pytest.raises(ValueError):
            Program(name="p", body=simple_body(), pointer_chase_indices=frozenset({99}))

    def test_valid_pointer_chase(self):
        program = Program(name="p", body=simple_body(), pointer_chase_indices=frozenset({0}))
        assert 0 in program.pointer_chase_indices


class TestWarmupRegion:
    def test_defaults(self):
        region = WarmupRegion(base=0, size_bytes=4096)
        assert region.dirty and region.ace
        assert region.word_fraction == 1.0
        assert not region.recurrent

    def test_size_validation(self):
        with pytest.raises(ValueError):
            WarmupRegion(base=0, size_bytes=0)

    def test_word_fraction_validation(self):
        with pytest.raises(ValueError):
            WarmupRegion(base=0, size_bytes=64, word_fraction=1.5)


class TestDynamicStream:
    def test_setup_then_body(self):
        program = Program(
            name="p",
            body=simple_body(),
            setup=[make_store(StridedPattern(base=0, stride=8, region=64), srcs=[0])],
            iterations=2,
        )
        ops = list(program.dynamic_stream())
        assert len(ops) == 1 + 2 * 4
        assert ops[0].in_setup
        assert all(not op.in_setup for op in ops[1:])

    def test_iteration_and_index_tracking(self):
        program = Program(name="p", body=simple_body(), iterations=3)
        ops = list(program.dynamic_stream())
        assert [op.iteration for op in ops[:4]] == [0, 0, 0, 0]
        assert [op.iteration for op in ops[4:8]] == [1, 1, 1, 1]
        assert [op.index_in_body for op in ops[:4]] == [0, 1, 2, 3]

    def test_sequence_numbers_monotonic(self):
        program = Program(name="p", body=simple_body(), iterations=2)
        ops = list(program.dynamic_stream())
        assert [op.seq for op in ops] == list(range(len(ops)))

    def test_max_instructions_truncates(self):
        program = Program(name="p", body=simple_body(), iterations=1000)
        ops = list(program.dynamic_stream(max_instructions=10))
        assert len(ops) == 10

    def test_dynamic_op_type(self):
        program = Program(name="p", body=simple_body(), iterations=1)
        assert all(isinstance(op, DynamicOp) for op in program.dynamic_stream())


class TestProgramIntrospection:
    def test_instruction_mix(self):
        program = Program(name="p", body=simple_body(), iterations=1)
        mix = program.instruction_mix()
        assert mix["load"] == pytest.approx(0.25)
        assert mix["store"] == pytest.approx(0.25)
        assert mix["int_alu"] == pytest.approx(0.25)
        assert mix["branch"] == pytest.approx(0.25)

    def test_ace_fraction_all_ace(self):
        program = Program(name="p", body=simple_body(), iterations=1)
        assert program.ace_instruction_fraction() == pytest.approx(1.0)

    def test_ace_fraction_with_nops(self):
        body = simple_body() + [make_nop()] * 4
        program = Program(name="p", body=body, iterations=1)
        assert program.ace_instruction_fraction() == pytest.approx(0.5)

    def test_branch_behavior_default(self):
        program = Program(name="p", body=simple_body(), iterations=1)
        assert program.branch_behavior(3) is BranchBehavior.BIASED

    def test_branch_behavior_override(self):
        program = Program(
            name="p", body=simple_body(), iterations=1,
            branch_behaviors={3: BranchBehavior.LOOP_CLOSING},
        )
        assert program.branch_behavior(3) is BranchBehavior.LOOP_CLOSING

    def test_static_footprint(self):
        body = [
            make_load(1, StridedPattern(base=0, stride=8, region=4096), srcs=[2]),
            make_store(StridedPattern(base=0, stride=8, region=1024), srcs=[1]),
            make_branch(srcs=[1]),
        ]
        program = Program(name="p", body=body, iterations=1)
        assert program.static_footprint_bytes() == 4096

    def test_body_size(self):
        program = Program(name="p", body=simple_body(), iterations=1)
        assert program.body_size == 4
