"""Tests for the content-addressed fitness memoization cache."""

from __future__ import annotations

from repro.ga.engine import GAParameters, GeneticAlgorithm
from repro.ga.genes import GeneSpace, IntGene
from repro.ga.individual import Individual
from repro.parallel.cache import FitnessCache, evaluation_context_digest, genome_digest


class TestGenomeDigest:
    def test_stable_and_order_insensitive(self):
        assert genome_digest({"a": 1, "b": 2}) == genome_digest({"b": 2, "a": 1})

    def test_distinct_genomes_distinct_keys(self):
        assert genome_digest({"a": 1}) != genome_digest({"a": 2})
        assert genome_digest({"a": 1}) != genome_digest({"b": 1})

    def test_type_sensitive(self):
        # 1 and 1.0 are different genome values and must not collide.
        assert genome_digest({"a": 1}) != genome_digest({"a": 1.0})

    def test_context_separates_entries(self):
        assert genome_digest({"a": 1}, "ctx1") != genome_digest({"a": 1}, "ctx2")

    def test_context_digest_varies_with_components(self):
        assert evaluation_context_digest("cfg", 8000) != evaluation_context_digest("cfg", 4000)


class TestFitnessCache:
    def test_hit_and_miss_accounting(self):
        cache = FitnessCache()
        assert cache.lookup({"a": 1}) is None
        cache.store({"a": 1}, 2.5, {"tag": "x"})
        hit = cache.lookup({"a": 1})
        assert hit == (2.5, {"tag": "x"})
        assert cache.lookup({"a": 2}) is None
        assert cache.stats.hits == 1
        assert cache.stats.misses == 2
        assert cache.stats.lookups == 3
        assert cache.stats.hit_rate == 1 / 3

    def test_equal_fitness_does_not_collide(self):
        """Two distinct genomes with the same fitness stay separate entries."""
        cache = FitnessCache()
        cache.store({"a": 1}, 7.0, {"who": "first"})
        cache.store({"a": 2}, 7.0, {"who": "second"})
        assert len(cache) == 2
        assert cache.lookup({"a": 1}) == (7.0, {"who": "first"})
        assert cache.lookup({"a": 2}) == (7.0, {"who": "second"})

    def test_payload_isolated_from_caller_mutation(self):
        cache = FitnessCache()
        payload = {"k": "v"}
        cache.store({"a": 1}, 1.0, payload)
        payload["k"] = "mutated"
        fitness, cached_payload = cache.lookup({"a": 1})
        assert cached_payload == {"k": "v"}
        cached_payload["k"] = "mutated-too"
        assert cache.lookup({"a": 1})[1] == {"k": "v"}

    def test_clear_resets_entries_and_stats(self):
        cache = FitnessCache()
        cache.store({"a": 1}, 1.0)
        cache.lookup({"a": 1})
        cache.lookup({"a": 2})
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 0
        assert cache.stats.misses == 0
        assert cache.lookup({"a": 1}) is None

    def test_max_entries_evicts_oldest(self):
        cache = FitnessCache(max_entries=2)
        cache.store({"a": 1}, 1.0)
        cache.store({"a": 2}, 2.0)
        cache.store({"a": 3}, 3.0)
        assert len(cache) == 2
        assert cache.lookup({"a": 1}) is None
        assert cache.lookup({"a": 3}) == (3.0, {})


class TestEngineMemoization:
    SPACE = GeneSpace([IntGene("x", 0, 3)])

    def test_duplicate_genomes_not_reevaluated(self):
        calls: list[dict] = []

        def evaluator(individual: Individual) -> float:
            calls.append(dict(individual.genome))
            return float(individual.genome["x"])

        params = GAParameters(population_size=8, generations=6, seed=3, migration_count=0)
        result = GeneticAlgorithm(self.SPACE, evaluator, params).run()
        # Only 4 distinct genomes exist, so the evaluator can run at most 4 times.
        assert len(calls) <= 4
        assert result.evaluations == len(calls)
        assert result.cache_hits > 0
        assert result.cache_misses == len(calls)
        assert result.cache_hit_rate > 0.0

    def test_cache_disabled_reevaluates(self):
        calls = []

        def evaluator(individual: Individual) -> float:
            calls.append(dict(individual.genome))
            return float(individual.genome["x"])

        params = GAParameters(population_size=8, generations=4, seed=3, migration_count=0)
        result = GeneticAlgorithm(
            self.SPACE, evaluator, params, fitness_cache=False
        ).run()
        # No cache: nothing is memoized across generations, so recurring
        # genomes re-evaluate (no cache misses are counted)...
        assert result.cache_misses == 0
        assert result.evaluations == len(calls)
        assert len(calls) > 4  # cross-generation duplicates were re-evaluated
        # ...but duplicates *within* one generation still share a single
        # evaluation (counted as dedup hits), so only 4 distinct genomes can
        # ever run in the same batch.
        assert result.cache_hits > 0
        assert all(calls.count(genome) <= 4 for genome in calls)

    def test_already_evaluated_individuals_skipped_before_submission(self):
        """Elites (already `evaluated`) must never reach the backend or cache."""
        submitted_states: list[list[bool]] = []

        class RecordingBackend:
            jobs = 1

            def evaluate_batch(self, evaluator, individuals):
                submitted_states.append([ind.evaluated for ind in individuals])
                outcomes = []
                for individual in individuals:
                    fitness = evaluator(individual)
                    outcomes.append((float(fitness), individual.payload))
                return outcomes

            def close(self):
                pass

        def evaluator(individual: Individual) -> float:
            return float(individual.genome["x"])

        params = GAParameters(
            population_size=6, generations=4, seed=5, elite_count=2, migration_count=0
        )
        engine = GeneticAlgorithm(
            self.SPACE, evaluator, params, backend=RecordingBackend(), fitness_cache=False
        )
        engine.run()
        # No already-evaluated individual ever reached the backend; duplicate
        # genomes are deduplicated before batch construction, so batches can
        # be smaller than the population; and after generation 0 the
        # carried-over elites are withheld per generation.
        assert all(not state for batch in submitted_states for state in batch)
        assert 1 <= len(submitted_states[0]) <= 6
        for batch in submitted_states[1:]:
            assert len(batch) <= 6 - 2
