"""Tests for the fully-associative data TLB model."""

from __future__ import annotations

import pytest

from repro.memory.tlb import Tlb, TlbConfig


def small_tlb(entries: int = 4, page: int = 4096) -> Tlb:
    return Tlb(TlbConfig(entries=entries, page_bytes=page))


class TestTlbConfig:
    def test_reach(self):
        config = TlbConfig(entries=256, page_bytes=8 * 1024)
        assert config.reach_bytes == 2 * 1024 * 1024
        assert config.total_bits == 256 * 64

    def test_validation(self):
        with pytest.raises(ValueError):
            TlbConfig(entries=0, page_bytes=4096)


class TestHitsAndMisses:
    def test_first_access_misses(self):
        tlb = small_tlb()
        assert not tlb.access(0, cycle=1)
        assert tlb.stats.misses == 1

    def test_same_page_hits(self):
        tlb = small_tlb()
        tlb.access(0, cycle=1)
        assert tlb.access(4095, cycle=2)

    def test_different_page_misses(self):
        tlb = small_tlb()
        tlb.access(0, cycle=1)
        assert not tlb.access(4096, cycle=2)

    def test_miss_rate(self):
        tlb = small_tlb()
        tlb.access(0, cycle=1)
        tlb.access(0, cycle=2)
        tlb.access(4096, cycle=3)
        assert tlb.stats.miss_rate == pytest.approx(2 / 3)


class TestEviction:
    def test_lru_eviction_on_overflow(self):
        tlb = small_tlb(entries=2)
        tlb.access(0 * 4096, cycle=1)
        tlb.access(1 * 4096, cycle=2)
        tlb.access(0 * 4096, cycle=3)       # refresh page 0
        tlb.access(2 * 4096, cycle=4)       # evicts page 1
        assert tlb.access(0 * 4096, cycle=5)
        assert not tlb.access(1 * 4096, cycle=6)

    def test_entry_count_bounded(self):
        tlb = small_tlb(entries=4)
        for page in range(20):
            tlb.access(page * 4096, cycle=page)
        assert tlb.resident_entry_count() <= 4
        assert tlb.stats.evictions >= 16


class TestAceAccounting:
    def test_ace_interval_is_first_to_last_use(self):
        tlb = small_tlb()
        tlb.access(0, cycle=10)
        tlb.access(0, cycle=60)
        tlb.access(0, cycle=110)
        tlb.finalize(cycle=500)
        # Residency ACE from first use (10) to last use (110).
        assert tlb.ace_entry_cycles == 100

    def test_unused_tail_not_ace(self):
        tlb = small_tlb()
        tlb.access(0, cycle=10)
        tlb.finalize(cycle=1000)
        assert tlb.ace_entry_cycles == 0

    def test_unace_accesses_do_not_extend(self):
        tlb = small_tlb()
        tlb.access(0, cycle=10, ace=True)
        tlb.access(0, cycle=50, ace=True)
        tlb.access(0, cycle=90, ace=False)
        tlb.finalize(cycle=100)
        assert tlb.ace_entry_cycles == 40

    def test_eviction_closes_interval(self):
        tlb = small_tlb(entries=1)
        tlb.access(0, cycle=10)
        tlb.access(0, cycle=30)
        tlb.access(4096, cycle=100)  # evicts page 0
        tlb.finalize(cycle=200)
        assert tlb.ace_entry_cycles == 20

    def test_avf_bounds(self):
        tlb = small_tlb(entries=2)
        tlb.access(0, cycle=0)
        tlb.access(0, cycle=100)
        tlb.finalize(cycle=100)
        assert 0.0 < tlb.avf(100) <= 1.0

    def test_avf_zero_cycles(self):
        assert small_tlb().avf(0) == 0.0

    def test_ace_bit_cycles_scaling(self):
        tlb = small_tlb()
        tlb.access(0, cycle=0)
        tlb.access(0, cycle=10)
        tlb.finalize(cycle=10)
        assert tlb.ace_bit_cycles() == pytest.approx(10 * 64)


class TestWarmPage:
    def test_recurrent_warm_page_ace_for_whole_window(self):
        tlb = small_tlb()
        tlb.warm_page(0, cycle=0, ace=True, recurrent=True)
        tlb.finalize(cycle=300)
        assert tlb.ace_entry_cycles == 300

    def test_non_recurrent_warm_page_needs_uses(self):
        tlb = small_tlb()
        tlb.warm_page(0, cycle=0, ace=True, recurrent=False)
        tlb.finalize(cycle=300)
        assert tlb.ace_entry_cycles == 0

    def test_recurrent_page_evicted_loses_extrapolation(self):
        tlb = small_tlb(entries=1)
        tlb.warm_page(0, cycle=0, ace=True, recurrent=True)
        tlb.access(4096, cycle=50)   # evicts the warm page
        tlb.finalize(cycle=300)
        assert tlb.ace_entry_cycles == 0

    def test_warm_page_counts_as_resident(self):
        tlb = small_tlb()
        tlb.warm_page(0, cycle=0)
        assert tlb.access(0, cycle=5)
        assert tlb.resident_entry_count() == 1


class TestAccessMany:
    """Bulk translate must equal the per-element loop, element for element."""

    def test_bulk_equals_loop(self):
        addresses = [index * 1536 % (1 << 16) for index in range(64)]
        cycles = [5 + index for index in range(len(addresses))]
        bulk = small_tlb()
        loop = small_tlb()
        assert bulk.access_many(addresses, cycles) == [
            loop.access(a, c) for a, c in zip(addresses, cycles)
        ]
        bulk.finalize(cycle=1000)
        loop.finalize(cycle=1000)
        assert bulk.ace_entry_cycles == loop.ace_entry_cycles
        assert bulk.stats == loop.stats

    def test_bulk_scalar_cycle(self):
        addresses = [index * 4096 for index in range(12)]
        bulk = small_tlb()
        loop = small_tlb()
        assert bulk.access_many(addresses, 3, ace=False) == [
            loop.access(a, 3, ace=False) for a in addresses
        ]
