"""Tests for the component registries of the run API."""

from __future__ import annotations

import pytest

from repro.api.registry import (
    BACKENDS,
    CONFIGS,
    FAULT_RATES,
    FITNESS_OBJECTIVES,
    SCALES,
    WORKLOAD_SUITES,
    Registry,
    RegistryError,
    registries,
)


class TestRegistry:
    def test_register_and_get(self):
        registry = Registry("widget")
        registry.register("plain", lambda: "plain-widget")
        assert registry.get("plain")() == "plain-widget"
        assert "plain" in registry
        assert registry.names() == ["plain"]

    def test_register_as_decorator(self):
        registry = Registry("widget")

        @registry.register("fancy")
        def make_fancy():
            return "fancy-widget"

        assert registry.create("fancy") == "fancy-widget"
        assert make_fancy() == "fancy-widget"  # decorator returns the factory

    def test_duplicate_registration_rejected(self):
        registry = Registry("widget")
        registry.register("w", lambda: 1)
        with pytest.raises(ValueError, match="already registered"):
            registry.register("w", lambda: 2)
        registry.register("w", lambda: 2, replace=True)
        assert registry.create("w") == 2

    def test_insertion_order_preserved(self):
        registry = Registry("widget")
        for name in ("zeta", "alpha", "mid"):
            registry.register(name, lambda: None)
        assert registry.names() == ["zeta", "alpha", "mid"]

    def test_invalid_name_rejected(self):
        registry = Registry("widget")
        with pytest.raises(ValueError):
            registry.register("", lambda: None)

    def test_unregister(self):
        registry = Registry("widget")
        registry.register("w", lambda: 1)
        registry.unregister("w")
        assert "w" not in registry
        registry.unregister("w")  # idempotent


class TestRegistryErrors:
    def test_unknown_name_suggests_nearest_match(self):
        with pytest.raises(RegistryError) as excinfo:
            CONFIGS.get("basline")
        assert "unknown machine config 'basline'" in str(excinfo.value)
        assert "did you mean 'baseline'?" in str(excinfo.value)
        assert excinfo.value.suggestion == "baseline"

    def test_unknown_name_lists_registered(self):
        with pytest.raises(RegistryError) as excinfo:
            FAULT_RATES.get("nonsense_xyz")
        assert "unit" in str(excinfo.value) and "rhc" in str(excinfo.value)

    def test_registry_error_is_a_key_error(self):
        with pytest.raises(KeyError):
            SCALES.get("warp")


class TestDefaultComponents:
    def test_all_stock_components_registered(self):
        assert CONFIGS.names() == ["baseline", "config_a", "extended"]
        assert FAULT_RATES.names() == ["unit", "rhc", "edr"]
        assert WORKLOAD_SUITES.names() == ["spec_int", "spec_fp", "mibench", "all"]
        assert FITNESS_OBJECTIVES.names() == ["balanced", "overall", "core_only"]
        assert SCALES.names() == ["quick", "default", "paper"]
        assert BACKENDS.names() == ["serial", "process", "resilient"]

    def test_factories_build_the_canonical_objects(self):
        assert CONFIGS.create("config_a").rob_entries == 96
        assert FAULT_RATES.create("edr").name == "edr"
        assert len(WORKLOAD_SUITES.create("all")) == 33
        assert SCALES.create("paper").ga_population == 50
        fitness = FITNESS_OBJECTIVES.create("core_only", FAULT_RATES.create("unit"))
        assert fitness.name == "core_only"

    def test_registries_mapping_covers_every_registry(self):
        mapping = registries()
        assert set(mapping) == {
            "config", "fault_rates", "suite", "fitness", "scale", "backend",
            "kernel_backends", "structures",
        }
        assert mapping["config"] is CONFIGS

    def test_kernel_backend_registry(self):
        from repro.api.registry import KERNEL_BACKENDS

        assert KERNEL_BACKENDS.names() == ["batch", "source", "interpreted", "vector"]
        assert registries()["kernel_backends"] is KERNEL_BACKENDS

    def test_structure_registry_is_exposed(self):
        from repro.vuln import STRUCTURES

        assert registries()["structures"] is STRUCTURES
        assert STRUCTURES.names()[:8] == [
            "iq", "rob", "lq_tag", "lq_data", "sq_tag", "sq_data", "rf", "fu",
        ]

    def test_backend_factories(self):
        serial = BACKENDS.create("serial", 4)
        assert serial.jobs == 1
        pool = BACKENDS.create("process", 2)
        try:
            assert pool.jobs == 2
        finally:
            pool.close()
